package distidx

import (
	"math/rand"
	"testing"

	"airindex/internal/broadcast"
	"airindex/internal/core"
	"airindex/internal/geom"
	"airindex/internal/testutil"
	"airindex/internal/wire"
)

func buildTree(t *testing.T, n int, seed int64) *core.Tree {
	t.Helper()
	sub, _ := testutil.RandomVoronoi(t, n, seed)
	tree, err := core.Build(sub)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestStructure(t *testing.T) {
	tree := buildTree(t, 120, 401)
	params := wire.DTreeParams(256)
	for d := 1; d <= 6; d++ {
		idx, err := NewWithDepth(tree, params, d)
		if err != nil {
			t.Fatalf("depth %d: %v", d, err)
		}
		if got, want := idx.Segments(), 1<<d; got > want {
			t.Errorf("depth %d: %d segments, at most %d expected", d, got, want)
		}
		// Every region appears in exactly one segment, in leaf order.
		seen := map[int]bool{}
		count := 0
		for _, seg := range idx.segments {
			for _, b := range seg.buckets {
				if seen[b] {
					t.Fatalf("depth %d: bucket %d in two segments", d, b)
				}
				seen[b] = true
				count++
			}
		}
		if count != tree.Sub.N() {
			t.Fatalf("depth %d: %d buckets of %d", d, count, tree.Sub.N())
		}
		// Cycle accounting.
		if idx.CycleLen() != idx.TotalIndexPackets()+idx.DataPackets() {
			t.Fatalf("depth %d: cycle %d != index %d + data %d",
				d, idx.CycleLen(), idx.TotalIndexPackets(), idx.DataPackets())
		}
	}
}

func TestAccessResolvesCorrectly(t *testing.T) {
	tree := buildTree(t, 150, 402)
	idx, err := New(tree, wire.DTreeParams(256))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(403))
	for q := 0; q < 8000; q++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		tm := rng.Float64() * float64(idx.CycleLen())
		c, err := idx.Access(p, tm)
		if err != nil {
			t.Fatalf("query %v at %v: %v", p, tm, err)
		}
		if want := tree.Locate(p); c.Bucket != want {
			t.Fatalf("query %v: bucket %d want %d", p, c.Bucket, want)
		}
		if c.Latency < float64(c.TuneData) {
			t.Fatalf("latency %v below data time", c.Latency)
		}
		if c.Latency > 2.5*float64(idx.CycleLen()) {
			t.Fatalf("latency %v exceeds 2.5 cycles", c.Latency)
		}
		if c.TuneIndex < 1 || c.TuneProbe != 1 {
			t.Fatalf("odd tuning %+v", c)
		}
	}
}

func TestDistributedBeatsOneMOnLatency(t *testing.T) {
	// The headline property: for the same tree and packet size, distributed
	// indexing yields lower expected latency than (1, m) with optimal m,
	// at comparable tuning.
	tree := buildTree(t, 300, 404)
	params := wire.DTreeParams(512)
	dist, err := New(tree, params)
	if err != nil {
		t.Fatal(err)
	}
	paged, err := tree.Page(params)
	if err != nil {
		t.Fatal(err)
	}
	n := tree.Sub.N()
	bp := params.DataBucketPackets()
	m := broadcast.OptimalM(paged.IndexPackets(), n*bp)
	sched, err := broadcast.NewSchedule(paged.IndexPackets(), n, bp, m)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(405))
	var distLat, distTune, omLat, omTune float64
	const q = 30000
	for i := 0; i < q; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		tm := rng.Float64() * float64(dist.CycleLen())
		dc, err := dist.Access(p, tm)
		if err != nil {
			t.Fatal(err)
		}
		distLat += dc.Latency
		distTune += float64(dc.TuneIndex)

		bucket, trace := paged.Locate(p)
		oc, err := sched.Access(rng.Float64()*float64(sched.CycleLen()),
			broadcast.SearchTrace{Bucket: bucket, IndexOffsets: trace})
		if err != nil {
			t.Fatal(err)
		}
		omLat += oc.Latency
		omTune += float64(oc.TuneIndex)
	}
	distLat, distTune, omLat, omTune = distLat/q, distTune/q, omLat/q, omTune/q
	t.Logf("distributed: latency %.1f tuning %.2f (m=%d, cycle %d); (1,m): latency %.1f tuning %.2f (m=%d, cycle %d)",
		distLat, distTune, dist.Segments(), dist.CycleLen(), omLat, omTune, m, sched.CycleLen())
	if distLat >= omLat {
		t.Errorf("distributed latency %.1f not below (1,m) latency %.1f", distLat, omLat)
	}
	if distTune > omTune*1.6 {
		t.Errorf("distributed tuning %.2f much worse than (1,m) %.2f", distTune, omTune)
	}
}

func TestErrors(t *testing.T) {
	tree := buildTree(t, 30, 406)
	if _, err := NewWithDepth(tree, wire.DTreeParams(256), 0); err == nil {
		t.Error("cut depth 0 should fail")
	}
	if _, err := NewWithDepth(tree, wire.Params{}, 1); err == nil {
		t.Error("invalid params should fail")
	}
	single, _ := testutil.RandomVoronoi(t, 1, 407)
	st, err := core.Build(single)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(st, wire.DTreeParams(256)); err == nil {
		t.Error("single-region tree should fail")
	}
}

func TestDeepCutDegradesGracefully(t *testing.T) {
	tree := buildTree(t, 40, 408)
	// A cut at (almost) the full height makes nearly every node replicated.
	idx, err := NewWithDepth(tree, wire.DTreeParams(128), tree.Height())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(409))
	for q := 0; q < 1500; q++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		c, err := idx.Access(p, rng.Float64()*float64(idx.CycleLen()))
		if err != nil {
			t.Fatal(err)
		}
		if want := tree.Locate(p); c.Bucket != want {
			t.Fatalf("bucket %d want %d", c.Bucket, want)
		}
	}
}
