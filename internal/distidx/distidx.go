// Package distidx implements the distributed-indexing broadcast
// organization of Imielinski, Viswanathan & Badrinath (the paper's
// reference [15]) for the D-tree, as an alternative to the (1, m) scheme
// the paper evaluates. Instead of replicating the whole index m times, the
// tree is cut at a chosen depth: the part above the cut (the "replicated
// part") is transmitted before every data segment, while each subtree below
// the cut (the "local part") is transmitted exactly once, directly in front
// of the data buckets it indexes — which requires the buckets to be ordered
// by the tree's leaf traversal. Cycles shrink from m·I + D to
// m·R + (I - R) + D, trading slightly longer client paths for materially
// lower access latency.
package distidx

import (
	"fmt"
	"math"
	"sort"

	"airindex/internal/core"
	"airindex/internal/geom"
	"airindex/internal/wire"
)

// segment is one data segment: the local subtree in front of it and the
// buckets (region ids, in leaf order) it covers.
type segment struct {
	root    core.ChildRef
	local   *wire.Layout // nil for a bare data-pointer segment
	buckets []int
	// Cycle geometry, in slots relative to the segment block's start:
	// [replicated part][local part][buckets].
	blockStart int // absolute slot of the block's replicated part
	localStart int
	dataStart  int
}

// Index is a D-tree broadcast under distributed indexing.
type Index struct {
	Tree     *core.Tree
	Params   wire.Params
	CutDepth int

	rep      *wire.Layout
	repNodes map[int]bool // node id -> in replicated part
	segments []segment
	segOf    map[int]int // region id -> segment index
	posOf    map[int]int // region id -> absolute slot of its first data packet
	cycleLen int
}

// New builds the distributed organization with the latency-minimizing cut
// depth (searched exhaustively; the tree has O(log N) levels).
func New(tree *core.Tree, params wire.Params) (*Index, error) {
	if tree.Root == nil {
		return nil, fmt.Errorf("distidx: single-region trees need no index")
	}
	height := tree.Height()
	var best *Index
	var bestScore float64
	for d := 1; d < height; d++ {
		idx, err := NewWithDepth(tree, params, d)
		if err != nil {
			return nil, err
		}
		// Expected latency ~ wait for the next block's replicated part
		// (cycle/m / 2) plus wait for the target segment (cycle / 2).
		m := float64(len(idx.segments))
		score := float64(idx.cycleLen)/(2*m) + float64(idx.cycleLen)/2
		if best == nil || score < bestScore {
			best, bestScore = idx, score
		}
	}
	if best == nil {
		return NewWithDepth(tree, params, 1)
	}
	return best, nil
}

// NewWithDepth builds the organization with an explicit cut depth: nodes at
// depth < cutDepth are replicated in every block; each child crossing the
// cut becomes a segment.
func NewWithDepth(tree *core.Tree, params wire.Params, cutDepth int) (*Index, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if tree.Root == nil {
		return nil, fmt.Errorf("distidx: single-region trees need no index")
	}
	if cutDepth < 1 {
		return nil, fmt.Errorf("distidx: cut depth %d must be >= 1", cutDepth)
	}
	idx := &Index{
		Tree: tree, Params: params, CutDepth: cutDepth,
		repNodes: make(map[int]bool),
		segOf:    make(map[int]int),
		posOf:    make(map[int]int),
	}

	// Split the tree: replicated nodes above the cut, segment roots below,
	// in left-to-right order so buckets come out in leaf order.
	var repSpecs []wire.NodeSpec
	var walk func(c core.ChildRef, depth, parent int)
	walk = func(c core.ChildRef, depth, parent int) {
		if depth >= cutDepth || c.IsData() {
			idx.segments = append(idx.segments, segment{root: c})
			return
		}
		n := c.Node
		idx.repNodes[n.ID] = true
		var children []int
		for _, ch := range []core.ChildRef{n.Left, n.Right} {
			if !ch.IsData() && depth+1 < cutDepth {
				children = append(children, ch.Node.ID)
			}
		}
		repSpecs = append(repSpecs, wire.NodeSpec{
			ID: n.ID, Size: core.NodeSize(n, params), Parent: parent,
			Children: children, Leaf: len(children) == 0,
		})
		walk(n.Left, depth+1, n.ID)
		walk(n.Right, depth+1, n.ID)
	}
	walk(core.ChildRef{Node: tree.Root}, 0, -1)

	// The replicated specs must be in a parent-before-child order for the
	// pager; the pre-order walk above guarantees it.
	rep, err := wire.TopDown(repSpecs, params.PacketCapacity)
	if err != nil {
		return nil, fmt.Errorf("distidx: paging replicated part: %w", err)
	}
	idx.rep = rep

	// Page each segment's local subtree and collect its buckets in order.
	for si := range idx.segments {
		seg := &idx.segments[si]
		var leaves []int
		var collect func(c core.ChildRef)
		collect = func(c core.ChildRef) {
			if c.IsData() {
				leaves = append(leaves, c.Data)
				return
			}
			collect(c.Node.Left)
			collect(c.Node.Right)
		}
		collect(seg.root)
		seg.buckets = leaves
		for _, b := range leaves {
			idx.segOf[b] = si
		}
		if !seg.root.IsData() {
			specs := subtreeSpecs(seg.root.Node, params)
			local, err := wire.TopDown(specs, params.PacketCapacity)
			if err != nil {
				return nil, fmt.Errorf("distidx: paging segment %d: %w", si, err)
			}
			seg.local = local
		}
	}

	// Lay out the cycle.
	bp := params.DataBucketPackets()
	pos := 0
	for si := range idx.segments {
		seg := &idx.segments[si]
		seg.blockStart = pos
		pos += rep.PacketCount
		seg.localStart = pos
		if seg.local != nil {
			pos += seg.local.PacketCount
		}
		seg.dataStart = pos
		for _, b := range seg.buckets {
			idx.posOf[b] = pos
			pos += bp
		}
	}
	idx.cycleLen = pos
	return idx, nil
}

// subtreeSpecs lists a subtree's nodes breadth-first for paging.
func subtreeSpecs(root *core.Node, params wire.Params) []wire.NodeSpec {
	var specs []wire.NodeSpec
	parent := map[int]int{root.ID: -1}
	queue := []*core.Node{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		var children []int
		for _, c := range []core.ChildRef{n.Left, n.Right} {
			if !c.IsData() {
				children = append(children, c.Node.ID)
				parent[c.Node.ID] = n.ID
				queue = append(queue, c.Node)
			}
		}
		specs = append(specs, wire.NodeSpec{
			ID: n.ID, Size: core.NodeSize(n, params), Parent: parent[n.ID],
			Children: children, Leaf: len(children) == 0,
		})
	}
	return specs
}

// CycleLen returns the broadcast cycle length in packets.
func (x *Index) CycleLen() int { return x.cycleLen }

// Segments returns the number of data segments (the organization's m).
func (x *Index) Segments() int { return len(x.segments) }

// IndexPacketsPerBlock returns the packets of one replicated part.
func (x *Index) IndexPacketsPerBlock() int { return x.rep.PacketCount }

// TotalIndexPackets returns index packets per cycle (replicated and local).
func (x *Index) TotalIndexPackets() int {
	total := len(x.segments) * x.rep.PacketCount
	for i := range x.segments {
		if x.segments[i].local != nil {
			total += x.segments[i].local.PacketCount
		}
	}
	return total
}

// DataPackets returns data packets per cycle.
func (x *Index) DataPackets() int {
	return x.Tree.Sub.N() * x.Params.DataBucketPackets()
}

// Cost is the outcome of one simulated access.
type Cost struct {
	Bucket    int
	Latency   float64 // packet slots from query issue to the data's end
	TuneProbe int
	TuneIndex int
	TuneData  int
}

// TotalTuning returns the parsed-packet count across protocol steps.
func (c Cost) TotalTuning() int { return c.TuneProbe + c.TuneIndex + c.TuneData }

// Access simulates the client protocol for a query at point p issued at
// absolute time t: probe, doze to the next block's replicated part, route
// through it, doze to the target segment's local part (every block carries
// the same replicated part, so the routing stays valid), finish the search
// there, and download the bucket that follows in the same block.
func (x *Index) Access(p geom.Point, t float64) (Cost, error) {
	bucket, path := x.Tree.LocatePath(p)
	seg := x.segOf[bucket]
	repOffsets, localOffsets := x.pathPackets(p, path)

	cost := Cost{Bucket: bucket}
	cur := float64(int(t) + 1) // finish the in-flight packet
	cost.TuneProbe = 1

	// Replicated part of the next block.
	_, blockStart := x.nextBlock(cur)
	for _, off := range repOffsets {
		slot := float64(blockStart + off)
		if slot+1 < cur {
			return cost, fmt.Errorf("distidx: replicated packet %d not monotone", off)
		}
		cur = slot + 1
		cost.TuneIndex++
	}

	// The target segment's local part, at its next occurrence.
	s := &x.segments[seg]
	localAbs := x.nextOccurrence(s.localStart, cur)
	for _, off := range localOffsets {
		slot := localAbs + float64(off)
		if slot+1 < cur {
			return cost, fmt.Errorf("distidx: local packet %d not monotone", off)
		}
		cur = slot + 1
		cost.TuneIndex++
	}

	// The bucket follows inside the same block instance.
	blockAbs := localAbs - float64(s.localStart-s.blockStart)
	dataSlot := blockAbs + float64(x.posOf[bucket]-s.blockStart)
	if dataSlot+1e-9 < cur {
		return cost, fmt.Errorf("distidx: bucket slot %g precedes cursor %g", dataSlot, cur)
	}
	bp := x.Params.DataBucketPackets()
	end := dataSlot + float64(bp)
	cost.TuneData = bp
	cost.Latency = end - t
	return cost, nil
}

// nextOccurrence returns the smallest absolute slot congruent to offset
// (mod cycle) that is >= after.
func (x *Index) nextOccurrence(offset int, after float64) float64 {
	L := float64(x.cycleLen)
	base := float64(offset)
	k := math.Ceil((after - base) / L)
	if k < 0 {
		k = 0
	}
	return base + k*L
}

// nextBlock returns the index and absolute start of the first block whose
// replicated part begins at or after cur.
func (x *Index) nextBlock(cur float64) (int, int) {
	L := float64(x.cycleLen)
	k := math.Floor(cur / L)
	within := cur - k*L
	starts := make([]int, len(x.segments))
	for i := range x.segments {
		starts[i] = x.segments[i].blockStart
	}
	i := sort.SearchInts(starts, int(math.Ceil(within-1e-9)))
	if i < len(starts) {
		return i, int(k)*x.cycleLen + starts[i]
	}
	return 0, (int(k)+1)*x.cycleLen + starts[0]
}

// pathPackets splits the in-memory search path into replicated-part and
// local-part packet offsets (sorted, de-duplicated), applying the same
// RMC/LMC early-termination rule as core.Paged.Locate: only queries inside
// a node's interlocking band read past its first packet.
func (x *Index) pathPackets(p geom.Point, path []*core.Node) (rep []int, local []int) {
	seenRep := map[int]bool{}
	seenLoc := map[int]bool{}
	for _, n := range path {
		var layout *wire.Layout
		var seen map[int]bool
		var out *[]int
		if x.repNodes[n.ID] {
			layout, seen, out = x.rep, seenRep, &rep
		} else {
			layout, seen, out = x.segments[x.segOf[x.anyBucketUnder(n)]].local, seenLoc, &local
		}
		packets := layout.PacketsOf(n.ID)
		need := packets[:1]
		if n.InBand(p) {
			need = packets
		}
		for _, pk := range need {
			if !seen[int(pk)] {
				seen[int(pk)] = true
				*out = append(*out, int(pk))
			}
		}
	}
	sort.Ints(rep)
	sort.Ints(local)
	return rep, local
}

// anyBucketUnder returns a region id below the node (to find its segment).
func (x *Index) anyBucketUnder(n *core.Node) int {
	c := core.ChildRef{Node: n}
	for !c.IsData() {
		c = c.Node.Left
	}
	return c.Data
}
