package distidx

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"airindex/internal/core"
	"airindex/internal/geom"
	"airindex/internal/testutil"
	"airindex/internal/wire"
)

// TestCrossShardRoutingProperty is the cross-shard routing property suite:
// at every cut depth, the replicated upper levels act as a channel
// directory over the segment "shards", and a directory-routed lookup must
// agree with a flat D-tree index over the union of all partitions. The
// query workers share one Index concurrently, so running the suite under
// -race also proves the routed read path is free of hidden mutation.
func TestCrossShardRoutingProperty(t *testing.T) {
	for _, tc := range []struct {
		n    int
		seed int64
	}{
		{80, 901},
		{160, 902},
		{240, 903},
	} {
		sub, _ := testutil.RandomVoronoi(t, tc.n, tc.seed)
		tree, err := core.Build(sub)
		if err != nil {
			t.Fatal(err)
		}
		for _, capacity := range []int{128, 256} {
			params := wire.DTreeParams(capacity)
			flat, err := tree.Page(params)
			if err != nil {
				t.Fatal(err)
			}
			for d := 1; d < tree.Height(); d++ {
				idx, err := NewWithDepth(tree, params, d)
				if err != nil {
					t.Fatalf("n=%d cap=%d depth=%d: %v", tc.n, capacity, d, err)
				}

				// Property 1: the segments partition the region set — every
				// region appears in exactly one segment, and segOf agrees.
				seen := make(map[int]int)
				for si := range idx.segments {
					for _, b := range idx.segments[si].buckets {
						if prev, dup := seen[b]; dup {
							t.Fatalf("depth %d: region %d in segments %d and %d", d, b, prev, si)
						}
						seen[b] = si
						if idx.segOf[b] != si {
							t.Fatalf("depth %d: segOf[%d] = %d, laid out in %d", d, b, idx.segOf[b], si)
						}
					}
				}
				if len(seen) != sub.N() {
					t.Fatalf("depth %d: %d regions across segments, subdivision has %d", d, len(seen), sub.N())
				}

				// Property 2: directory-routed lookups agree with the flat
				// index, checked from concurrently running workers sharing
				// the one Index (the -race half of the property).
				const workers, perWorker = 4, 150
				var wg sync.WaitGroup
				errc := make(chan error, workers)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(tc.seed*1000 + int64(capacity*10+d*100+w)))
						for i := 0; i < perWorker; i++ {
							p := geom.Pt(
								sub.Area.MinX+rng.Float64()*sub.Area.W(),
								sub.Area.MinY+rng.Float64()*sub.Area.H(),
							)
							want, _ := flat.Locate(p)
							c, err := idx.Access(p, rng.Float64()*float64(idx.CycleLen()))
							if err != nil {
								errc <- fmt.Errorf("depth %d: access at %v: %w", d, p, err)
								return
							}
							if c.Bucket != want && !sub.Regions[c.Bucket].Poly.Contains(p) {
								errc <- fmt.Errorf("depth %d: routed lookup at %v answered %d, flat index says %d", d, p, c.Bucket, want)
								return
							}
							if idx.segOf[c.Bucket] != seen[c.Bucket] {
								errc <- fmt.Errorf("depth %d: bucket %d routed to segment %d, laid out in %d", d, c.Bucket, idx.segOf[c.Bucket], seen[c.Bucket])
								return
							}
							if c.Latency <= 0 || c.TuneIndex < 1 {
								errc <- fmt.Errorf("depth %d: degenerate cost %+v at %v", d, c, p)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				close(errc)
				for err := range errc {
					t.Fatalf("n=%d cap=%d: %v", tc.n, capacity, err)
				}
			}
		}
	}
}
