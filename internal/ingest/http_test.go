package ingest

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"airindex/internal/stream"
)

// blockSink parks every apply on a gate so tests can fill the queue
// deterministically behind a wedged cut.
type blockSink struct {
	mu      sync.Mutex
	applied int
	entered chan struct{} // one token per ApplyBatch entry
	gate    chan struct{} // closed to release all applies
}

func newBlockSink() *blockSink {
	return &blockSink{entered: make(chan struct{}, 64), gate: make(chan struct{})}
}

func (b *blockSink) ApplyBatch(ops []stream.SiteOp) ([]int, error) {
	b.entered <- struct{}{}
	<-b.gate
	b.mu.Lock()
	b.applied += len(ops)
	b.mu.Unlock()
	ids := make([]int, len(ops))
	return ids, nil
}

func (b *blockSink) Pending() bool { return false }

func postBatch(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHandlerAcceptAndBackpressure(t *testing.T) {
	sink := newBlockSink()
	cfg := fastConfig()
	cfg.QueueCap = 4
	cfg.CutMaxOps = 1
	cfg.CutInterval = time.Millisecond
	p := Start(sink, cfg)
	ts := httptest.NewServer(NewHandler(p))
	defer ts.Close()

	// First op: accepted, and the worker wedges applying it.
	resp := postBatch(t, ts.URL, `{"ops":[{"op":"add","x":1,"y":2}]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first post = %d, want 202", resp.StatusCode)
	}
	var acc struct {
		Accepted int `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil || acc.Accepted != 1 {
		t.Fatalf("accepted body = %+v (err %v), want accepted:1", acc, err)
	}
	<-sink.entered // cut worker is now parked inside ApplyBatch

	// Four more fill the ring exactly.
	resp = postBatch(t, ts.URL, `{"ops":[{"op":"add","x":1,"y":1},{"op":"add","x":2,"y":2},{"op":"add","x":3,"y":3},{"op":"add","x":4,"y":4}]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fill post = %d, want 202", resp.StatusCode)
	}

	// The ring is full and the worker wedged: deterministic 429.
	resp = postBatch(t, ts.URL, `{"ops":[{"op":"add","x":9,"y":9}]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow post = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if got := p.m.ShedOps.Load(); got != 1 {
		t.Fatalf("ShedOps = %d, want 1", got)
	}

	// Release the sink: every accepted op applies, the shed one never does.
	close(sink.gate)
	if err := p.Close(nil); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.applied != 5 {
		t.Fatalf("applied ops = %d, want exactly the 5 accepted", sink.applied)
	}
}

func TestHandlerRejectsMalformedBatches(t *testing.T) {
	p := Start(newFakeSink(), fastConfig())
	defer p.Close(nil)
	ts := httptest.NewServer(NewHandler(p))
	defer ts.Close()

	cases := []struct {
		name, body string
	}{
		{"truncated json", `{"ops":[{"op":"add"`},
		{"unknown op", `{"ops":[{"op":"teleport","id":1}]}`},
		{"unknown field", `{"ops":[{"op":"add","lat":12.0}]}`},
		{"empty batch", `{"ops":[]}`},
		{"positive id add", `{"ops":[{"op":"add","id":7,"x":1,"y":1}]}`},
	}
	for _, tc := range cases {
		resp := postBatch(t, ts.URL, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
	if got := p.Depth(); got != 0 {
		t.Fatalf("malformed batches leaked %d ops into the queue", got)
	}

	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest = %d, want 405", resp.StatusCode)
	}
}

func TestHandlerClosedPipeline(t *testing.T) {
	p := Start(newFakeSink(), fastConfig())
	ts := httptest.NewServer(NewHandler(p))
	defer ts.Close()
	if err := p.Close(nil); err != nil {
		t.Fatal(err)
	}
	resp := postBatch(t, ts.URL, `{"ops":[{"op":"add","x":1,"y":1}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post after close = %d, want 503", resp.StatusCode)
	}
}

func TestHandlerMetricsEndpoint(t *testing.T) {
	p := Start(newFakeSink(), fastConfig())
	defer p.Close(nil)
	ts := httptest.NewServer(NewHandler(p))
	defer ts.Close()

	if err := p.Enqueue(Op{Kind: OpAdd, X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	for _, key := range []string{"ingest_enqueued_ops", "ingest_queue_depth", "ingest_coalesce_ratio"} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("metrics snapshot missing %q (have %d keys)", key, len(snap))
		}
	}
}
