package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// maxBodyBytes bounds one ingest request body; with ~60 bytes per JSON op
// this admits batches far beyond any sane queue capacity while keeping a
// hostile client from ballooning the decoder.
const maxBodyBytes = 1 << 20

// wireOp is the JSON wire form of one operation:
//
//	{"op":"add","id":-1,"x":120.5,"y":340.25}
//	{"op":"move","id":17,"x":99.0,"y":12.5}
//	{"op":"remove","id":17}
type wireOp struct {
	Op string  `json:"op"`
	ID int64   `json:"id,omitempty"`
	X  float64 `json:"x,omitempty"`
	Y  float64 `json:"y,omitempty"`
}

type wireBatch struct {
	Ops []wireOp `json:"ops"`
}

func (w wireOp) toOp() (Op, error) {
	switch w.Op {
	case "add":
		if w.ID > 0 {
			return Op{}, fmt.Errorf("add must not carry a positive id (got %d); use a negative provisional handle or omit it", w.ID)
		}
		return Op{Kind: OpAdd, ID: w.ID, X: w.X, Y: w.Y}, nil
	case "move":
		return Op{Kind: OpMove, ID: w.ID, X: w.X, Y: w.Y}, nil
	case "remove":
		return Op{Kind: OpRemove, ID: w.ID}, nil
	}
	return Op{}, fmt.Errorf("unknown op %q (want add, move or remove)", w.Op)
}

// NewHandler serves the pipeline over HTTP: POST a JSON batch, get 202
// with {"accepted":N} when the whole batch was admitted, 400 on malformed
// input, 429 with Retry-After when the queue sheds it, 503 once the
// pipeline is closed. Admission is batch-atomic — a 429 means zero of the
// batch's operations were queued, so the client retries the batch whole.
func NewHandler(p *Pipeline) http.Handler {
	retryAfter := int(p.cfg.CutInterval / time.Second)
	if retryAfter < 1 {
		retryAfter = 1
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			httpError(w, http.StatusMethodNotAllowed, "POST a JSON op batch")
			return
		}
		var batch wireBatch
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&batch); err != nil {
			p.m.InvalidOps.Inc()
			httpError(w, http.StatusBadRequest, "bad batch: %v", err)
			return
		}
		if len(batch.Ops) == 0 {
			httpError(w, http.StatusBadRequest, "empty batch")
			return
		}
		ops := make([]Op, 0, len(batch.Ops))
		for i, wo := range batch.Ops {
			op, err := wo.toOp()
			if err != nil {
				p.m.InvalidOps.Inc()
				httpError(w, http.StatusBadRequest, "op %d: %v", i, err)
				return
			}
			ops = append(ops, op)
		}
		switch err := p.Enqueue(ops...); {
		case err == nil:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(map[string]int{"accepted": len(ops)})
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", fmt.Sprint(retryAfter))
			httpError(w, http.StatusTooManyRequests, "queue full, retry the whole batch")
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusServiceUnavailable, "pipeline closed")
		default:
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p.m.Snapshot())
	})
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
