package ingest

import (
	"context"
	"fmt"
	"time"

	"airindex/internal/fabric"
	"airindex/internal/geom"
	"airindex/internal/stream"
)

// Sink is the generation-cut backend the pipeline feeds — satisfied by
// SwapperSink (single-channel stream.Swapper) and FabricSink (sharded
// fabric.Swapper). The Pending/republish contract is load-bearing: after
// a failed cut, Pending reports true and an empty Apply republishes the
// already-applied state, so retries never re-apply operations.
type Sink interface {
	// ApplyBatch applies ops and cuts a generation. ids maps each applied
	// batch position to its (new or touched) site id; a shortened ids with
	// a non-nil error means the prefix was applied and published and the
	// op at index len(ids) was refused.
	ApplyBatch(ops []stream.SiteOp) (ids []int, err error)
	// Pending reports whether applied state is ahead of the air — i.e. a
	// cut failed after mutating and an empty ApplyBatch must republish.
	Pending() bool
}

// SwapperSink adapts a single-channel stream.Swapper.
func SwapperSink(sw *stream.Swapper) Sink { return swapperSink{sw} }

type swapperSink struct{ sw *stream.Swapper }

func (s swapperSink) ApplyBatch(ops []stream.SiteOp) ([]int, error) {
	_, ids, err := s.sw.Apply(ops)
	return ids, err
}
func (s swapperSink) Pending() bool { return s.sw.Pending() }

// FabricSink adapts a sharded fabric.Swapper.
func FabricSink(sw *fabric.Swapper) Sink { return fabricSink{sw} }

type fabricSink struct{ sw *fabric.Swapper }

func (s fabricSink) ApplyBatch(ops []stream.SiteOp) ([]int, error) {
	_, ids, err := s.sw.Apply(ops)
	return ids, err
}
func (s fabricSink) Pending() bool { return s.sw.Pending() }

// Config tunes the pipeline; zero values take the documented defaults.
type Config struct {
	QueueCap     int           // admission ring capacity (default 4096)
	Policy       Policy        // overflow policy (default Reject)
	BlockTimeout time.Duration // Block policy wait bound (default 100ms)

	CutMaxOps   int           // cut when the window holds this many ops (default 256)
	CutInterval time.Duration // ... or when this much time passed since the window opened (default 200ms)

	StageTimeout time.Duration // cut wall-clock budget before it is counted overdue (default 30s)
	MaxRetries   int           // republish retries after a failed cut (default 5)
	RetryBackoff time.Duration // first retry delay, doubling per attempt (default 50ms)

	Logf    func(format string, args ...any) // degradation log; nil = silent
	Metrics *Metrics                         // nil = fresh private registry
}

func (c *Config) fill() {
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if c.BlockTimeout <= 0 {
		c.BlockTimeout = 100 * time.Millisecond
	}
	if c.CutMaxOps <= 0 {
		c.CutMaxOps = 256
	}
	if c.CutInterval <= 0 {
		c.CutInterval = 200 * time.Millisecond
	}
	if c.StageTimeout <= 0 {
		c.StageTimeout = 30 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Metrics == nil {
		c.Metrics = NewMetrics()
	}
}

// Pipeline is the assembled ingest front-end: admission queue, coalescer
// and the single cut worker. Create with Start, feed with Enqueue (or the
// HTTP handler), stop with Close.
type Pipeline struct {
	cfg   Config
	q     *Queue
	sink  Sink
	m     *Metrics
	prov  map[int64]int // provisional handle -> live site id (worker-only)
	quar  bool          // a panic poisoned the sink; serve what's on air, apply nothing
	genHi uint64        // cuts landed (worker-only writes; read via Metrics)
	done  chan struct{}
}

// Start wires the pipeline to a sink and launches the cut worker.
func Start(sink Sink, cfg Config) *Pipeline {
	cfg.fill()
	p := &Pipeline{
		cfg:  cfg,
		sink: sink,
		m:    cfg.Metrics,
		prov: make(map[int64]int),
		done: make(chan struct{}),
	}
	p.q = NewQueue(cfg.QueueCap, cfg.Policy, cfg.BlockTimeout, p.m)
	go p.run()
	return p
}

// Enqueue admits a batch of operations (batch-atomic; see Queue.Enqueue).
func (p *Pipeline) Enqueue(ops ...Op) error { return p.q.Enqueue(ops...) }

// Depth reports how many operations wait in the admission ring.
func (p *Pipeline) Depth() int { return p.q.Depth() }

// Metrics exposes the pipeline's observability set.
func (p *Pipeline) Metrics() *Metrics { return p.m }

// Close stops admission, drains every queued operation through final cuts,
// and waits for the worker to exit — or for ctx, whichever first. A nil
// ctx waits indefinitely.
func (p *Pipeline) Close(ctx context.Context) error {
	p.q.Close()
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	select {
	case <-p.done:
		return nil
	case <-cancel:
		return ctx.Err()
	}
}

// run is the cut worker: gather a window, coalesce, apply, repeat until
// the queue is closed and drained.
func (p *Pipeline) run() {
	defer close(p.done)
	co := newCoalescer(p.m)
	for {
		e, ok := p.q.popOne(time.Time{})
		if !ok {
			return // closed and drained
		}
		co.add(e)
		windowEnd := time.Now().Add(p.cfg.CutInterval)
		for co.len() < p.cfg.CutMaxOps {
			e, ok := p.q.popOne(windowEnd)
			if !ok {
				// Deadline — or closed-and-empty, which the next outer
				// popOne disambiguates.
				break
			}
			co.add(e)
		}
		p.cut(co.flush())
	}
}

// cut applies one coalesced window through the sink with the full
// degradation ladder: handle resolution, panic quarantine, per-op
// rejection, and pending-republish retries.
func (p *Pipeline) cut(batch []pendingOp) {
	if p.quar {
		// A previous cut panicked; the sink is not trusted with mutations
		// any more. Count the work and let the air serve the last good
		// generation.
		p.m.QuarantinedBatches.Inc()
		p.m.QuarantinedOps.Add(int64(len(batch)))
		return
	}
	ops, meta := p.resolve(batch)
	for len(ops) > 0 {
		ids, err, panicked := p.applyOnce(ops)
		if panicked {
			p.quar = true
			p.m.QuarantinedBatches.Inc()
			p.m.QuarantinedOps.Add(int64(len(ops)))
			p.cfg.Logf("ingest: cut panicked; quarantining pipeline (%d ops dropped)", len(ops))
			// One guarded attempt to republish whatever prefix may have
			// mutated before the panic, so the air does not drift from the
			// maintainer. If this also fails the air keeps the last good
			// generation.
			if p.sink.Pending() {
				func() {
					defer func() { recover() }()
					p.sink.ApplyBatch(nil)
				}()
			}
			return
		}
		applied := len(ids)
		if applied > len(ops) {
			applied = len(ops)
		}
		p.settle(ops[:applied], meta[:applied], ids[:applied])
		if err == nil {
			p.m.Cuts.Inc()
			p.genHi++
			p.m.CutOps.Observe(int64(applied))
			return
		}
		if !p.sink.Pending() {
			// The op at index len(ids) was refused; the prefix is already on
			// air. Drop the poisoned op, continue with the suffix.
			if applied < len(ops) {
				p.m.RejectedOps.Inc()
				p.cfg.Logf("ingest: op rejected by swapper, dropping it: %v", err)
				if applied > 0 {
					p.m.Cuts.Inc()
					p.genHi++
					p.m.CutOps.Observe(int64(applied))
				}
				ops = ops[applied+1:]
				meta = meta[applied+1:]
				continue
			}
			// Error, nothing pending, nothing refused: the sink broke its
			// contract. Log loudly and stop touching this batch.
			p.cfg.Logf("ingest: sink error with no pending state and no refused op: %v", err)
			return
		}
		// The operations mutated the maintainer but the cut did not land
		// (build or publish failure). Republish with backoff; Apply(nil)
		// recompiles from scratch, never re-applies ops.
		if !p.republish() {
			return
		}
		p.m.Cuts.Inc()
		p.genHi++
		p.m.CutOps.Observe(int64(applied))
		return
	}
}

// republish retries an empty ApplyBatch until the pending state lands on
// air or retries are exhausted. Reports success.
func (p *Pipeline) republish() bool {
	backoff := p.cfg.RetryBackoff
	for attempt := 1; attempt <= p.cfg.MaxRetries; attempt++ {
		time.Sleep(backoff)
		backoff *= 2
		p.m.Retries.Inc()
		_, err, panicked := p.applyOnce(nil)
		if panicked {
			p.quar = true
			p.cfg.Logf("ingest: republish panicked; quarantining pipeline")
			return false
		}
		if err == nil {
			return true
		}
		p.cfg.Logf("ingest: republish attempt %d/%d failed: %v", attempt, p.cfg.MaxRetries, err)
	}
	p.cfg.Logf("ingest: republish abandoned after %d attempts; air lags the maintainer until the next cut", p.cfg.MaxRetries)
	return false
}

// applyOnce runs one sink apply under panic isolation and the stage
// timeout watchdog. The watchdog only observes — a wedged sink cannot be
// safely abandoned mid-mutation, so the worker logs, counts CutTimeouts,
// and keeps waiting.
func (p *Pipeline) applyOnce(ops []stream.SiteOp) (ids []int, err error, panicked bool) {
	watchdog := time.AfterFunc(p.cfg.StageTimeout, func() {
		p.m.CutTimeouts.Inc()
		p.cfg.Logf("ingest: cut exceeded stage timeout %v (%d ops); still waiting", p.cfg.StageTimeout, len(ops))
	})
	defer watchdog.Stop()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("ingest: cut panic: %v", r)
			panicked = true
		}
	}()
	ids, err = p.sink.ApplyBatch(ops)
	return ids, err, false
}

// resolve translates a coalesced window into swapper operations: handles
// (< 0) become live site ids via the provisional map, dangling references
// are dropped and counted. meta parallels ops for latency accounting and
// handle registration after the cut lands.
func (p *Pipeline) resolve(batch []pendingOp) ([]stream.SiteOp, []pendingOp) {
	ops := make([]stream.SiteOp, 0, len(batch))
	meta := make([]pendingOp, 0, len(batch))
	for _, po := range batch {
		var op stream.SiteOp
		switch po.state {
		case pendAdd:
			op = stream.SiteOp{Kind: stream.OpAdd, P: geom.Pt(po.x, po.y)}
		case pendMove, pendRemove:
			id := po.id
			if id < 0 {
				real, ok := p.prov[id]
				if !ok {
					p.m.InvalidOps.Inc()
					p.cfg.Logf("ingest: dropping op on unknown handle %d", id)
					continue
				}
				id = int64(real)
			}
			kind := stream.OpMove
			if po.state == pendRemove {
				kind = stream.OpRemove
			}
			op = stream.SiteOp{Kind: kind, ID: int(id), P: geom.Pt(po.x, po.y)}
		default:
			continue
		}
		ops = append(ops, op)
		meta = append(meta, po)
	}
	return ops, meta
}

// settle records the consequences of applied operations: provisional
// handles bind to (or retire from) real site ids and each op's
// admission-to-on-air latency is observed.
func (p *Pipeline) settle(ops []stream.SiteOp, meta []pendingOp, ids []int) {
	now := time.Now()
	for i := range ops {
		switch ops[i].Kind {
		case stream.OpAdd:
			if meta[i].id < 0 {
				p.prov[meta[i].id] = ids[i]
			}
		case stream.OpRemove:
			if meta[i].id < 0 {
				delete(p.prov, meta[i].id)
			}
		}
		p.m.OpLatencyNS.Observe(now.Sub(meta[i].at).Nanoseconds())
	}
}
