// Package ingest is the asynchronous update front-end of the broadcast
// stack: it absorbs a continuous stream of site add/remove/move operations
// from any number of producers, folds redundant operations per site,
// and cuts generations through a stream.Swapper or fabric.Swapper at a
// bounded, configurable pace — so a production-rate churn stream feeds the
// incremental cut machinery without ever holding more than a fixed amount
// of memory or wedging the serving path.
//
// The pipeline has three stages:
//
//  1. Admission (Queue): a fixed-capacity ring with typed rejection
//     (ErrQueueFull) and a configurable overflow policy — reject
//     immediately, block with a deadline, or shed the oldest queued move
//     (moves are superseded by later state; adds and removes never shed).
//     Memory is bounded by the ring, period: overload turns into
//     backpressure (429 on the HTTP endpoint), never into growth.
//
//  2. Coalescing: operations targeting the same site fold before they cost
//     a rebuild — move+move keeps only the newest position, add+remove
//     annihilates, move+remove keeps the remove — and a generation is cut
//     when the window reaches CutMaxOps or CutInterval elapses, whichever
//     comes first. Coalescing preserves final-state equivalence with
//     op-by-op application (pinned by TestCoalesceEquivalenceProperty).
//
//  3. The cut worker: one goroutine applies each coalesced batch through
//     the swapper off the serving hot path, building generation N+1 while
//     N streams on the air. Failures degrade, never escalate: a panicking
//     cut is recovered and the batch quarantined; a rejected operation is
//     dropped and the rest of the batch proceeds; a failed cut (built but
//     not published, or not built at all) retries with backoff through the
//     swapper's Pending/republish contract, which falls back to a
//     from-scratch rebuild — operations are never applied twice.
//
// Producers address live sites by their stable ids. An Add carries no id
// yet; a producer that wants to move or remove a site it just submitted
// tags the Add with a negative provisional id of its choosing and uses
// that handle in later operations — the pipeline resolves handles to real
// ids as cuts land and retires them when the site is removed.
package ingest

import (
	"errors"
	"fmt"

	"airindex/internal/stream"
)

// Site operation kinds, mirroring stream.SiteOp.
const (
	OpAdd    = stream.OpAdd
	OpRemove = stream.OpRemove
	OpMove   = stream.OpMove
)

// Op is one site mutation submitted to the pipeline.
//
// ID identifies the target site for Remove and Move: a value >= 0 is a
// stable live-site id, a value < 0 is a provisional handle naming a
// tagged Add submitted earlier (possibly in the same batch). For Add, a
// negative ID tags the new site with that provisional handle; zero leaves
// it untagged (the site can then only be addressed once its real id is
// learned out of band).
type Op struct {
	Kind int     `json:"kind"`
	ID   int64   `json:"id"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

// Errors the admission layer reports. ErrQueueFull is the typed rejection
// the HTTP endpoint maps to 429 + Retry-After.
var (
	ErrQueueFull = errors.New("ingest: queue full")
	ErrClosed    = errors.New("ingest: pipeline closed")
)

// Policy selects what Enqueue does when the ring has no room for a batch.
type Policy int

const (
	// Reject fails the whole batch immediately with ErrQueueFull.
	Reject Policy = iota
	// Block waits up to BlockTimeout for the cut worker to free room, then
	// fails with ErrQueueFull.
	Block
	// DropOldestMove shedds the oldest queued Move operations to make
	// room — a move is superseded state, so dropping an old one degrades
	// position freshness but never loses a site or resurrects one. When no
	// moves remain to shed, the batch is rejected like Reject.
	DropOldestMove
)

// String names the policy for logs and flag parsing.
func (p Policy) String() string {
	switch p {
	case Reject:
		return "reject"
	case Block:
		return "block"
	case DropOldestMove:
		return "drop-move"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy maps a flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "reject":
		return Reject, nil
	case "block":
		return Block, nil
	case "drop-move":
		return DropOldestMove, nil
	}
	return 0, fmt.Errorf("ingest: unknown overflow policy %q (want reject, block or drop-move)", s)
}
