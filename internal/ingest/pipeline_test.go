package ingest

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"airindex/internal/geom"
	"airindex/internal/obs"
	"airindex/internal/stream"
	"airindex/internal/testutil"
)

var testArea = geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}

// fakeSink models the swapper contract in memory: adds allocate ids,
// batches record, and the failure knobs (failCuts, rejectID, panicOnce)
// drive the degradation ladder without a real Voronoi build.
type fakeSink struct {
	mu      sync.Mutex
	nextID  int
	live    map[int]geom.Point
	batches [][]stream.SiteOp

	failCuts  int   // fail this many cuts with pending=true before succeeding
	rejectID  int   // refuse ops addressing this site id (0 = off)
	panicOnce bool  // panic on the next non-empty batch
	pending   bool  // mirrors the swapper's Pending contract
	applies   int64 // total ApplyBatch calls (including empty republishes)
}

func newFakeSink() *fakeSink { return &fakeSink{nextID: 1, live: map[int]geom.Point{}} }

func (f *fakeSink) ApplyBatch(ops []stream.SiteOp) ([]int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.applies++
	if f.panicOnce && len(ops) > 0 {
		f.panicOnce = false
		panic("fake sink panic")
	}
	ids := make([]int, 0, len(ops))
	for _, op := range ops {
		if f.rejectID != 0 && op.ID == f.rejectID {
			return ids, errors.New("fake sink: refused op")
		}
		switch op.Kind {
		case stream.OpAdd:
			id := f.nextID
			f.nextID++
			f.live[id] = op.P
			ids = append(ids, id)
		case stream.OpMove:
			if _, ok := f.live[op.ID]; !ok {
				return ids, errors.New("fake sink: move of dead site")
			}
			f.live[op.ID] = op.P
			ids = append(ids, op.ID)
		case stream.OpRemove:
			if _, ok := f.live[op.ID]; !ok {
				return ids, errors.New("fake sink: remove of dead site")
			}
			delete(f.live, op.ID)
			ids = append(ids, op.ID)
		}
	}
	if f.failCuts > 0 {
		f.failCuts--
		f.pending = true
		return ids, errors.New("fake sink: cut failed after mutating")
	}
	f.pending = false
	if len(ops) > 0 {
		cp := make([]stream.SiteOp, len(ops))
		copy(cp, ops)
		f.batches = append(f.batches, cp)
	}
	return ids, nil
}

func (f *fakeSink) Pending() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pending
}

func (f *fakeSink) batchCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.batches)
}

func fastConfig() Config {
	return Config{
		QueueCap:     256,
		CutMaxOps:    16,
		CutInterval:  10 * time.Millisecond,
		RetryBackoff: time.Millisecond,
	}
}

func awaitCuts(t *testing.T, p *Pipeline, n int64) {
	t.Helper()
	if !obs.AwaitAtLeast(p.m.Cuts.Load, n, 5*time.Second) {
		t.Fatalf("pipeline did not reach %d cuts (have %d)", n, p.m.Cuts.Load())
	}
}

func TestPipelineCutsAndCoalesces(t *testing.T) {
	sink := newFakeSink()
	p := Start(sink, fastConfig())
	defer p.Close(nil)

	// 8 moves of the same site fold into at most a couple of applied ops.
	if err := p.Enqueue(Op{Kind: OpAdd, ID: -1, X: 10, Y: 10}); err != nil {
		t.Fatal(err)
	}
	awaitCuts(t, p, 1)
	for i := 0; i < 8; i++ {
		if err := p.Enqueue(Op{Kind: OpMove, ID: -1, X: float64(100 + i), Y: 50}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(nil); err != nil {
		t.Fatal(err)
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.live) != 1 {
		t.Fatalf("live sites = %d, want 1", len(sink.live))
	}
	if got := sink.live[1]; got != geom.Pt(107, 50) {
		t.Fatalf("final position = %v, want the newest move (107,50)", got)
	}
	in, out := p.m.CoalescedIn.Load(), p.m.CoalescedOut.Load()
	if in != 9 {
		t.Fatalf("CoalescedIn = %d, want 9", in)
	}
	if out >= in {
		t.Fatalf("CoalescedOut = %d, want < %d (moves must fold)", out, in)
	}
	if lat := p.m.OpLatencyNS.Count(); lat != out {
		t.Fatalf("latency observations = %d, want one per applied op (%d)", lat, out)
	}
}

func TestPipelineProvisionalHandleLifecycle(t *testing.T) {
	sink := newFakeSink()
	p := Start(sink, fastConfig())
	defer p.Close(nil)

	// Window 1: tagged add. Window 2: move via the handle. Window 3: remove.
	if err := p.Enqueue(Op{Kind: OpAdd, ID: -7, X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	awaitCuts(t, p, 1)
	if err := p.Enqueue(Op{Kind: OpMove, ID: -7, X: 2, Y: 2}); err != nil {
		t.Fatal(err)
	}
	awaitCuts(t, p, 2)
	if err := p.Enqueue(Op{Kind: OpRemove, ID: -7}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(nil); err != nil {
		t.Fatal(err)
	}

	sink.mu.Lock()
	if len(sink.live) != 0 {
		t.Fatalf("live sites = %d, want 0 after remove-by-handle", len(sink.live))
	}
	// The moves/removes must have addressed the real id the add got.
	for _, b := range sink.batches[1:] {
		for _, op := range b {
			if op.ID != 1 {
				t.Fatalf("op addressed id %d, want the resolved real id 1", op.ID)
			}
		}
	}
	sink.mu.Unlock()
	// The handle is retired after the remove.
	if len(p.prov) != 0 {
		t.Fatalf("provisional map still holds %d handles after remove", len(p.prov))
	}
	// An op on the retired handle is invalid, not fatal.
	p2 := Start(newFakeSink(), fastConfig())
	defer p2.Close(nil)
	if err := p2.Enqueue(Op{Kind: OpMove, ID: -99, X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p2.Close(nil); err != nil {
		t.Fatal(err)
	}
	if got := p2.m.InvalidOps.Load(); got != 1 {
		t.Fatalf("InvalidOps = %d, want 1 for a dangling handle", got)
	}
}

func TestPipelineRetriesFailedCut(t *testing.T) {
	sink := newFakeSink()
	sink.failCuts = 2 // the cut and the first republish fail; second lands
	p := Start(sink, fastConfig())
	defer p.Close(nil)

	if err := p.Enqueue(Op{Kind: OpAdd, X: 3, Y: 3}); err != nil {
		t.Fatal(err)
	}
	awaitCuts(t, p, 1)
	if err := p.Close(nil); err != nil {
		t.Fatal(err)
	}

	if got := p.m.Retries.Load(); got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.live) != 1 {
		t.Fatalf("live sites = %d, want 1 (retries must not re-apply the add)", len(sink.live))
	}
}

func TestPipelineDropsRejectedOpAndContinues(t *testing.T) {
	sink := newFakeSink()
	p := Start(sink, fastConfig())
	defer p.Close(nil)

	// Site 1 exists; a move of dead site 55 lands between two valid ops.
	if err := p.Enqueue(Op{Kind: OpAdd, X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	awaitCuts(t, p, 1)
	if err := p.Enqueue(
		Op{Kind: OpMove, ID: 1, X: 5, Y: 5},
		Op{Kind: OpMove, ID: 55, X: 6, Y: 6},
		Op{Kind: OpMove, ID: 1, X: 7, Y: 7},
	); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(nil); err != nil {
		t.Fatal(err)
	}

	if got := p.m.RejectedOps.Load(); got != 1 {
		t.Fatalf("RejectedOps = %d, want 1", got)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if got := sink.live[1]; got != geom.Pt(7, 7) {
		t.Fatalf("site 1 at %v, want (7,7): the suffix after the rejected op must still apply", got)
	}
}

func TestPipelinePanicQuarantinesButSurvives(t *testing.T) {
	sink := newFakeSink()
	sink.panicOnce = true
	p := Start(sink, fastConfig())

	if err := p.Enqueue(Op{Kind: OpAdd, X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if !obs.AwaitAtLeast(p.m.QuarantinedBatches.Load, 1, 5*time.Second) {
		t.Fatalf("panicking cut was not quarantined")
	}
	// The pipeline still accepts and drains (into quarantine), and Close
	// returns instead of hanging on a dead worker.
	if err := p.Enqueue(Op{Kind: OpAdd, X: 2, Y: 2}); err != nil {
		t.Fatalf("enqueue after quarantine = %v, want accepted", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatalf("Close after panic = %v", err)
	}
	if got := p.m.QuarantinedBatches.Load(); got < 2 {
		t.Fatalf("QuarantinedBatches = %d, want >= 2 (post-panic batches quarantine too)", got)
	}
	if got := p.m.Cuts.Load(); got != 0 {
		t.Fatalf("Cuts = %d, want 0 after quarantine", got)
	}
}

func TestPipelineCloseDrainsQueue(t *testing.T) {
	sink := newFakeSink()
	cfg := fastConfig()
	cfg.CutMaxOps = 4
	p := Start(sink, cfg)

	for i := 0; i < 20; i++ {
		if err := p.Enqueue(Op{Kind: OpAdd, X: float64(i), Y: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Enqueue(Op{Kind: OpAdd, X: 1, Y: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after Close = %v, want ErrClosed", err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.live) != 20 {
		t.Fatalf("live sites = %d, want all 20 drained through final cuts", len(sink.live))
	}
}

// TestPipelineSwapperEquivalence is the end-to-end final-state property:
// a random op stream pushed through the full pipeline (queue, coalescer,
// provisional handles, real stream.Swapper) must leave the air serving
// exactly the site set that op-by-op application to a second swapper
// produces — and the program must be byte-comparable via nearest-site
// answers at random query points.
func TestPipelineSwapperEquivalence(t *testing.T) {
	const capacity = 256
	seedSites := testutil.RandomSites(testArea, 30, 6001)

	sw, err := stream.NewSwapper(testArea, seedSites, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := stream.NewSwapper(testArea, seedSites, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}

	cfg := fastConfig()
	cfg.CutMaxOps = 8
	p := Start(SwapperSink(sw), cfg)

	rng := rand.New(rand.NewSource(6002))
	nextHandle := int64(-1)
	liveHandles := []int64{}
	liveReal := append([]int{}, sw.LiveSiteIDs()...)
	handleReal := map[int64]int{} // oracle's view: handle -> oracle site id

	for i := 0; i < 120; i++ {
		x := testArea.MinX + rng.Float64()*(testArea.MaxX-testArea.MinX)
		y := testArea.MinY + rng.Float64()*(testArea.MaxY-testArea.MinY)
		switch k := rng.Intn(10); {
		case k < 3: // tagged add
			h := nextHandle
			nextHandle--
			liveHandles = append(liveHandles, h)
			if err := p.Enqueue(Op{Kind: OpAdd, ID: h, X: x, Y: y}); err != nil {
				t.Fatal(err)
			}
			_, ids, err := oracle.Apply([]stream.SiteOp{{Kind: stream.OpAdd, P: geom.Pt(x, y)}})
			if err != nil {
				t.Fatal(err)
			}
			handleReal[h] = ids[0]
		case k < 7: // move a live site (by real id or handle)
			if len(liveReal) > 0 && (len(liveHandles) == 0 || rng.Intn(2) == 0) {
				id := liveReal[rng.Intn(len(liveReal))]
				if err := p.Enqueue(Op{Kind: OpMove, ID: int64(id), X: x, Y: y}); err != nil {
					t.Fatal(err)
				}
				if _, _, err := oracle.Apply([]stream.SiteOp{{Kind: stream.OpMove, ID: id, P: geom.Pt(x, y)}}); err != nil {
					t.Fatal(err)
				}
			} else if len(liveHandles) > 0 {
				h := liveHandles[rng.Intn(len(liveHandles))]
				if err := p.Enqueue(Op{Kind: OpMove, ID: h, X: x, Y: y}); err != nil {
					t.Fatal(err)
				}
				if _, _, err := oracle.Apply([]stream.SiteOp{{Kind: stream.OpMove, ID: handleReal[h], P: geom.Pt(x, y)}}); err != nil {
					t.Fatal(err)
				}
			}
		default: // remove a live site
			if len(liveHandles) > 0 && rng.Intn(2) == 0 {
				j := rng.Intn(len(liveHandles))
				h := liveHandles[j]
				liveHandles = append(liveHandles[:j], liveHandles[j+1:]...)
				if err := p.Enqueue(Op{Kind: OpRemove, ID: h}); err != nil {
					t.Fatal(err)
				}
				if _, _, err := oracle.Apply([]stream.SiteOp{{Kind: stream.OpRemove, ID: handleReal[h]}}); err != nil {
					t.Fatal(err)
				}
			} else if len(liveReal) > 0 {
				j := rng.Intn(len(liveReal))
				id := liveReal[j]
				liveReal = append(liveReal[:j], liveReal[j+1:]...)
				if err := p.Enqueue(Op{Kind: OpRemove, ID: int64(id)}); err != nil {
					t.Fatal(err)
				}
				if _, _, err := oracle.Apply([]stream.SiteOp{{Kind: stream.OpRemove, ID: id}}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := p.Close(nil); err != nil {
		t.Fatal(err)
	}

	want := len(liveReal) + len(liveHandles)
	if sw.Len() != want || oracle.Len() != want {
		t.Fatalf("live sites: pipeline %d, oracle %d, generator expects %d",
			sw.Len(), oracle.Len(), want)
	}
	// Identical site sets produce identical Voronoi diagrams: at every
	// query point both swappers must answer with the same cell geometry.
	// (Site ids can differ — coalescing legally elides add+remove pairs the
	// oracle executes — so the comparison is geometric, not id-based.)
	g1, g2 := sw.Current(), oracle.Current()
	for _, q := range testutil.QueryPoints(testArea, 300, 6003) {
		r1, _ := g1.Flat.Locate(q)
		r2, _ := g2.Flat.Locate(q)
		if !samePolygon(g1.Sub.Regions[r1].Poly, g2.Sub.Regions[r2].Poly) {
			t.Fatalf("cell geometry diverged at query %v (pipeline region %d, oracle region %d)", q, r1, r2)
		}
	}
	if p.m.Cuts.Load() == 0 {
		t.Fatal("no cuts landed")
	}
	if p.m.InvalidOps.Load() != 0 || p.m.RejectedOps.Load() != 0 {
		t.Fatalf("valid stream produced %d invalid and %d rejected ops",
			p.m.InvalidOps.Load(), p.m.RejectedOps.Load())
	}
}

// samePolygon compares two cells as vertex multisets; both sides derive
// from identical floating-point arithmetic on the same final site set, so
// exact equality is the invariant (the repo pins incremental == rebuild
// byte-for-byte).
func samePolygon(a, b geom.Polygon) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[geom.Point]int{}
	for _, v := range a {
		count[v]++
	}
	for _, v := range b {
		count[v]--
		if count[v] < 0 {
			return false
		}
	}
	return true
}
