package ingest

import "airindex/internal/obs"

// Metrics is the pipeline's observability set, registered alongside the
// server's metrics so /metrics shows admission, coalescing, cut and
// degradation behavior in one document.
type Metrics struct {
	reg *obs.Registry

	QueueDepth  *obs.Gauge   // operations currently queued
	EnqueuedOps *obs.Counter // operations admitted
	ShedOps     *obs.Counter // operations rejected at admission (ErrQueueFull)
	DroppedMove *obs.Counter // queued moves shed by the DropOldestMove policy

	CoalescedIn  *obs.Counter // operations entering the coalescer
	CoalescedOut *obs.Counter // operations surviving it (folded batches are smaller)

	Cuts        *obs.Counter   // generation cuts applied
	CutOps      *obs.Histogram // coalesced operations per cut
	OpLatencyNS *obs.Histogram // enqueue -> on-air latency per published op, ns

	Retries     *obs.Counter // cut retries after a transient build/publish failure
	CutTimeouts *obs.Counter // cuts that exceeded the stage timeout (logged, still awaited)
	RejectedOps *obs.Counter // operations dropped after the swapper refused them
	InvalidOps  *obs.Counter // operations dropped before apply (dangling handle, dead site)

	QuarantinedBatches *obs.Counter // batches abandoned after a panicking cut
	QuarantinedOps     *obs.Counter // operations inside quarantined batches
}

// NewMetrics builds a pipeline metrics set backed by a fresh registry.
func NewMetrics() *Metrics { return NewMetricsIn(obs.NewRegistry(), "ingest_") }

// NewMetricsIn registers the pipeline metric set in an existing registry
// under a name prefix (conventionally "ingest_"), so a daemon can serve
// ingest and broadcast metrics from one /metrics document.
func NewMetricsIn(reg *obs.Registry, prefix string) *Metrics {
	m := &Metrics{
		reg:                reg,
		QueueDepth:         reg.Gauge(prefix + "queue_depth"),
		EnqueuedOps:        reg.Counter(prefix + "enqueued_ops"),
		ShedOps:            reg.Counter(prefix + "shed_ops"),
		DroppedMove:        reg.Counter(prefix + "dropped_moves"),
		CoalescedIn:        reg.Counter(prefix + "coalesced_in_ops"),
		CoalescedOut:       reg.Counter(prefix + "coalesced_out_ops"),
		Cuts:               reg.Counter(prefix + "cuts"),
		CutOps:             reg.Histogram(prefix+"cut_ops", 256),
		OpLatencyNS:        reg.Histogram(prefix+"op_latency_ns", 1024),
		Retries:            reg.Counter(prefix + "retries"),
		CutTimeouts:        reg.Counter(prefix + "cut_timeouts"),
		RejectedOps:        reg.Counter(prefix + "rejected_ops"),
		InvalidOps:         reg.Counter(prefix + "invalid_ops"),
		QuarantinedBatches: reg.Counter(prefix + "quarantined_batches"),
		QuarantinedOps:     reg.Counter(prefix + "quarantined_ops"),
	}
	// The coalesce ratio in/out — how many raw operations one applied
	// operation stands for (1.0 = no folding; derived, so it needs no
	// locking on the hot path).
	reg.Register(prefix+"coalesce_ratio", obs.Func(func() any {
		out := m.CoalescedOut.Load()
		if out == 0 {
			return 1.0
		}
		return float64(m.CoalescedIn.Load()) / float64(out)
	}))
	return m
}

// Registry exposes the underlying registry (for /metrics and snapshots).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Snapshot reads every pipeline metric into a JSON-friendly map.
func (m *Metrics) Snapshot() map[string]any { return m.reg.Snapshot() }
