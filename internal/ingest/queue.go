package ingest

import (
	"sync"
	"time"
)

// entry is one queued operation with its admission timestamp, the anchor
// of the op-to-on-air latency histogram.
type entry struct {
	op Op
	at time.Time
}

// Queue is the admission stage: a fixed-capacity ring of operations with
// batch-atomic enqueue and a configurable overflow policy. Memory never
// exceeds the ring — overload becomes ErrQueueFull (or shed moves), not
// growth. Any number of producers may Enqueue concurrently; the pipeline's
// single cut worker consumes.
type Queue struct {
	mu     sync.Mutex
	buf    []entry
	head   int // index of the oldest entry
	n      int // occupied entries
	closed bool

	policy       Policy
	blockTimeout time.Duration
	m            *Metrics

	nonEmpty chan struct{} // cap 1: consumer wake-up after a push
	space    chan struct{} // cap 1: blocked-producer wake-up after a pop
	closedCh chan struct{} // closed on Close
}

// NewQueue builds a queue of the given capacity (minimum 1). blockTimeout
// bounds the wait of the Block policy; the other policies ignore it.
func NewQueue(capacity int, policy Policy, blockTimeout time.Duration, m *Metrics) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	if m == nil {
		m = NewMetrics()
	}
	return &Queue{
		buf:          make([]entry, capacity),
		policy:       policy,
		blockTimeout: blockTimeout,
		m:            m,
		nonEmpty:     make(chan struct{}, 1),
		space:        make(chan struct{}, 1),
		closedCh:     make(chan struct{}),
	}
}

// Cap returns the ring capacity.
func (q *Queue) Cap() int { return len(q.buf) }

// Depth returns the number of queued operations.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Close rejects all future enqueues with ErrClosed; queued operations
// remain poppable so the worker can drain them.
func (q *Queue) Close() {
	q.mu.Lock()
	already := q.closed
	q.closed = true
	q.mu.Unlock()
	if !already {
		close(q.closedCh)
	}
}

// Enqueue admits a batch atomically: either every operation is queued (in
// order, contiguously) or none is and the error tells why — ErrQueueFull
// under the overflow policy, ErrClosed after Close. A batch larger than
// the ring capacity is always ErrQueueFull.
func (q *Queue) Enqueue(ops ...Op) error {
	if len(ops) == 0 {
		return nil
	}
	now := time.Now()
	deadline := now.Add(q.blockTimeout)
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return ErrClosed
		}
		if q.room(len(ops)) {
			for _, op := range ops {
				q.buf[(q.head+q.n)%len(q.buf)] = entry{op: op, at: now}
				q.n++
			}
			q.m.EnqueuedOps.Add(int64(len(ops)))
			q.m.QueueDepth.Set(int64(q.n))
			free := len(q.buf) - q.n
			q.mu.Unlock()
			select {
			case q.nonEmpty <- struct{}{}:
			default:
			}
			if free > 0 {
				// Another producer may be blocked on space this enqueue did
				// not consume; pass the wake-up along.
				select {
				case q.space <- struct{}{}:
				default:
				}
			}
			return nil
		}
		q.mu.Unlock()
		if q.policy != Block {
			q.m.ShedOps.Add(int64(len(ops)))
			return ErrQueueFull
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			q.m.ShedOps.Add(int64(len(ops)))
			return ErrQueueFull
		}
		t := time.NewTimer(wait)
		select {
		case <-q.space:
			t.Stop()
		case <-q.closedCh:
			t.Stop()
			return ErrClosed
		case <-t.C:
			q.m.ShedOps.Add(int64(len(ops)))
			return ErrQueueFull
		}
	}
}

// room reports whether need entries fit, shedding old moves first under
// the DropOldestMove policy. Caller holds mu.
func (q *Queue) room(need int) bool {
	if need > len(q.buf) {
		return false
	}
	if q.policy == DropOldestMove {
		for len(q.buf)-q.n < need {
			if !q.dropOldestMove() {
				break
			}
		}
	}
	return len(q.buf)-q.n >= need
}

// dropOldestMove removes one queued Move, preserving the order of
// everything else. Superseded moves go first — a Move whose site has a
// younger Move or Remove queued behind it contributes nothing to the final
// state, so shedding it is free. Only when every queued Move is still live
// does the policy fall back to the strictly oldest one (genuine data loss,
// but the oldest position is the stalest). Caller holds mu; reports whether
// a move was found.
func (q *Queue) dropOldestMove() bool {
	victim := -1
	for i := 0; i < q.n && victim < 0; i++ {
		op := q.buf[(q.head+i)%len(q.buf)].op
		if op.Kind != OpMove {
			continue
		}
		for j := i + 1; j < q.n; j++ {
			later := q.buf[(q.head+j)%len(q.buf)].op
			if later.ID == op.ID && (later.Kind == OpMove || later.Kind == OpRemove) {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		for i := 0; i < q.n; i++ {
			if q.buf[(q.head+i)%len(q.buf)].op.Kind == OpMove {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		return false
	}
	// Shift the younger entries down over the gap.
	for j := victim; j < q.n-1; j++ {
		q.buf[(q.head+j)%len(q.buf)] = q.buf[(q.head+j+1)%len(q.buf)]
	}
	q.buf[(q.head+q.n-1)%len(q.buf)] = entry{}
	q.n--
	q.m.DroppedMove.Inc()
	q.m.QueueDepth.Set(int64(q.n))
	return true
}

// popOne removes and returns the oldest entry, waiting until one arrives,
// the deadline passes (zero deadline = wait indefinitely), or the queue is
// closed and empty. ok is false only on deadline or closed-and-empty.
func (q *Queue) popOne(deadline time.Time) (entry, bool) {
	for {
		q.mu.Lock()
		if q.n > 0 {
			e := q.buf[q.head]
			q.buf[q.head] = entry{}
			q.head = (q.head + 1) % len(q.buf)
			q.n--
			q.m.QueueDepth.Set(int64(q.n))
			q.mu.Unlock()
			select {
			case q.space <- struct{}{}:
			default:
			}
			return e, true
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return entry{}, false
		}
		var (
			timer   *time.Timer
			timeout <-chan time.Time
		)
		if !deadline.IsZero() {
			wait := time.Until(deadline)
			if wait <= 0 {
				return entry{}, false
			}
			timer = time.NewTimer(wait)
			timeout = timer.C
		}
		select {
		case <-q.nonEmpty:
		case <-q.closedCh:
		case <-timeout:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}
