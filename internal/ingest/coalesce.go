package ingest

import "time"

// pending states of one coalescer slot.
const (
	pendAdd = iota + 1
	pendMove
	pendRemove
	pendCancelled // add+remove annihilated; emits nothing
)

// pendingOp is one coalescer slot: the folded fate of every operation that
// touched a single site (or provisional handle) inside the current window.
type pendingOp struct {
	state int
	id    int64   // site id or provisional handle (slot key); 0 for anonymous adds
	x, y  float64 // position for add/move
	at    time.Time
}

// coalescer folds a window of operations per site before they cost a cut.
// Slots are keyed by the operation's target: a stable site id (>= 0) or a
// provisional handle (< 0). Anonymous adds (ID 0 on an Add) are unkeyed —
// nothing can reference them inside the window, so each gets its own slot.
//
// Transition table per keyed slot (old state + incoming op -> new state):
//
//	add    + move   -> add at the new position
//	add    + remove -> cancelled (the site never existed on air)
//	move   + move   -> move to the newest position
//	move   + remove -> remove
//	remove + any    -> invalid; the late op is counted and dropped
//
// Emission preserves first-touch order and carries each slot's earliest
// admission time, so the op-to-on-air latency histogram reflects the
// oldest folded-in operation, not the freshest.
type coalescer struct {
	order []*pendingOp
	byKey map[int64]*pendingOp
	m     *Metrics
}

func newCoalescer(m *Metrics) *coalescer {
	if m == nil {
		m = NewMetrics()
	}
	return &coalescer{byKey: make(map[int64]*pendingOp), m: m}
}

// add folds one admitted entry into the window.
func (c *coalescer) add(e entry) {
	c.m.CoalescedIn.Inc()
	op := e.op
	if op.Kind == OpAdd {
		slot := &pendingOp{state: pendAdd, id: op.ID, x: op.X, y: op.Y, at: e.at}
		c.order = append(c.order, slot)
		if op.ID < 0 {
			// On a reused handle the earlier slot keeps its fate and the
			// newest add owns the key from here on.
			c.byKey[op.ID] = slot
		}
		return
	}
	slot, ok := c.byKey[op.ID]
	if !ok {
		// First touch of a live site (or a handle resolved in an earlier
		// window — the pipeline translates before apply).
		st := pendMove
		if op.Kind == OpRemove {
			st = pendRemove
		}
		slot = &pendingOp{state: st, id: op.ID, x: op.X, y: op.Y, at: e.at}
		c.order = append(c.order, slot)
		c.byKey[op.ID] = slot
		return
	}
	switch slot.state {
	case pendAdd:
		if op.Kind == OpMove {
			slot.x, slot.y = op.X, op.Y
		} else { // remove annihilates the unborn site
			slot.state = pendCancelled
			delete(c.byKey, op.ID)
		}
	case pendMove:
		if op.Kind == OpMove {
			slot.x, slot.y = op.X, op.Y
		} else {
			slot.state = pendRemove
		}
	case pendRemove, pendCancelled:
		// Operations addressing a site already removed in this window are
		// invalid — the producer raced its own remove.
		c.m.InvalidOps.Inc()
	}
}

// len reports how many operations the window currently holds (cancelled
// pairs still count toward the cut trigger: they occupied queue slots).
func (c *coalescer) len() int { return len(c.order) }

// flush drains the window in first-touch order, skipping annihilated
// pairs, and resets the coalescer for the next window.
func (c *coalescer) flush() []pendingOp {
	out := make([]pendingOp, 0, len(c.order))
	for _, slot := range c.order {
		if slot.state == pendCancelled {
			continue
		}
		out = append(out, *slot)
	}
	c.m.CoalescedOut.Add(int64(len(out)))
	c.order = c.order[:0]
	clear(c.byKey)
	return out
}
