package ingest

import (
	"math/rand"
	"testing"
	"time"
)

func feed(c *coalescer, ops ...Op) {
	at := time.Now()
	for _, o := range ops {
		c.add(entry{op: o, at: at})
	}
}

func TestCoalesceMoveMoveKeepsNewest(t *testing.T) {
	c := newCoalescer(nil)
	feed(c, Op{Kind: OpMove, ID: 7, X: 1, Y: 1}, Op{Kind: OpMove, ID: 7, X: 2, Y: 3})
	out := c.flush()
	if len(out) != 1 {
		t.Fatalf("flush len = %d, want 1", len(out))
	}
	if out[0].state != pendMove || out[0].x != 2 || out[0].y != 3 {
		t.Fatalf("folded move = %+v, want move to (2,3)", out[0])
	}
}

func TestCoalesceAddRemoveAnnihilates(t *testing.T) {
	c := newCoalescer(nil)
	feed(c,
		Op{Kind: OpAdd, ID: -1, X: 5, Y: 5},
		Op{Kind: OpMove, ID: -1, X: 6, Y: 6},
		Op{Kind: OpRemove, ID: -1},
	)
	if out := c.flush(); len(out) != 0 {
		t.Fatalf("annihilated pair emitted %d ops, want 0", len(out))
	}
	if got := c.m.CoalescedIn.Load(); got != 3 {
		t.Fatalf("CoalescedIn = %d, want 3", got)
	}
	if got := c.m.CoalescedOut.Load(); got != 0 {
		t.Fatalf("CoalescedOut = %d, want 0", got)
	}
}

func TestCoalesceMoveRemoveKeepsRemove(t *testing.T) {
	c := newCoalescer(nil)
	feed(c, Op{Kind: OpMove, ID: 4, X: 9, Y: 9}, Op{Kind: OpRemove, ID: 4})
	out := c.flush()
	if len(out) != 1 || out[0].state != pendRemove || out[0].id != 4 {
		t.Fatalf("move+remove folded to %+v, want a single remove of 4", out)
	}
}

func TestCoalesceAddMoveFoldsIntoAdd(t *testing.T) {
	c := newCoalescer(nil)
	feed(c, Op{Kind: OpAdd, ID: -3, X: 1, Y: 1}, Op{Kind: OpMove, ID: -3, X: 8, Y: 9})
	out := c.flush()
	if len(out) != 1 || out[0].state != pendAdd || out[0].x != 8 || out[0].y != 9 {
		t.Fatalf("add+move folded to %+v, want a single add at (8,9)", out)
	}
}

func TestCoalesceOpAfterRemoveIsInvalid(t *testing.T) {
	c := newCoalescer(nil)
	feed(c, Op{Kind: OpRemove, ID: 2}, Op{Kind: OpMove, ID: 2, X: 1, Y: 1})
	out := c.flush()
	if len(out) != 1 || out[0].state != pendRemove {
		t.Fatalf("flush = %+v, want only the remove", out)
	}
	if got := c.m.InvalidOps.Load(); got != 1 {
		t.Fatalf("InvalidOps = %d, want 1", got)
	}
}

func TestCoalesceFirstTouchOrder(t *testing.T) {
	c := newCoalescer(nil)
	feed(c,
		Op{Kind: OpMove, ID: 10, X: 1, Y: 1},
		Op{Kind: OpMove, ID: 20, X: 2, Y: 2},
		Op{Kind: OpMove, ID: 10, X: 3, Y: 3}, // folds into the first slot
		Op{Kind: OpRemove, ID: 30},
	)
	out := c.flush()
	ids := make([]int64, len(out))
	for i, po := range out {
		ids[i] = po.id
	}
	want := []int64{10, 20, 30}
	if len(ids) != len(want) {
		t.Fatalf("flush ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("flush ids = %v, want %v (first-touch order)", ids, want)
		}
	}
}

func TestCoalesceEarliestTimestampSurvivesFolding(t *testing.T) {
	c := newCoalescer(nil)
	early := time.Now().Add(-time.Minute)
	c.add(entry{op: Op{Kind: OpMove, ID: 1, X: 1, Y: 1}, at: early})
	c.add(entry{op: Op{Kind: OpMove, ID: 1, X: 2, Y: 2}, at: time.Now()})
	out := c.flush()
	if len(out) != 1 || !out[0].at.Equal(early) {
		t.Fatalf("folded op carries %v, want the earliest admission time %v", out[0].at, early)
	}
}

func TestCoalesceFlushResetsWindow(t *testing.T) {
	c := newCoalescer(nil)
	feed(c, Op{Kind: OpRemove, ID: 2})
	c.flush()
	// Site 2 was removed in the PREVIOUS window; a move in a new window is
	// not the coalescer's business to reject (the site may have been
	// re-added between windows as far as it knows).
	feed(c, Op{Kind: OpMove, ID: 2, X: 1, Y: 1})
	out := c.flush()
	if len(out) != 1 || out[0].state != pendMove {
		t.Fatalf("move after cross-window remove = %+v, want a move", out)
	}
	if got := c.m.InvalidOps.Load(); got != 0 {
		t.Fatalf("InvalidOps = %d, want 0 across windows", got)
	}
}

// siteModel is the reference semantics of an op stream: a dictionary from
// key to liveness + position, applied one op at a time.
type siteModel map[int64]struct {
	live bool
	x, y float64
}

func (m siteModel) apply(o Op) {
	s := m[o.ID]
	switch o.Kind {
	case OpAdd:
		s.live, s.x, s.y = true, o.X, o.Y
	case OpMove:
		if !s.live {
			return // invalid: dropped, like the pipeline drops it
		}
		s.x, s.y = o.X, o.Y
	case OpRemove:
		if !s.live {
			return
		}
		s.live = false
		s.x, s.y = 0, 0
	}
	m[o.ID] = s
}

func (m siteModel) applyPending(po pendingOp) {
	switch po.state {
	case pendAdd:
		m.apply(Op{Kind: OpAdd, ID: po.id, X: po.x, Y: po.y})
	case pendMove:
		m.apply(Op{Kind: OpMove, ID: po.id, X: po.x, Y: po.y})
	case pendRemove:
		m.apply(Op{Kind: OpRemove, ID: po.id})
	}
}

// TestCoalesceEquivalenceProperty: for random op streams cut into random
// windows, applying each window's coalesced output must leave the site
// dictionary in exactly the state op-by-op application produces. This is
// the contract that makes coalescing safe to enable unconditionally.
func TestCoalesceEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 200; trial++ {
		oracle := siteModel{}
		folded := siteModel{}
		c := newCoalescer(NewMetrics())

		// Keys -1..-6: a small space so collisions (and thus folding) are
		// common. The generator tracks liveness so most ops are valid, with
		// a deliberate slice of invalid ones mixed in.
		live := map[int64]bool{}
		nOps := 1 + rng.Intn(60)
		for i := 0; i < nOps; i++ {
			id := -1 - int64(rng.Intn(6))
			var o Op
			switch k := rng.Intn(10); {
			case k < 4 && !live[id]:
				// Re-adding a live handle is a producer error (it would fork a
				// second site under the same handle), so the generator only
				// adds dead keys — like a correct client.
				o = Op{Kind: OpAdd, ID: id, X: rng.Float64() * 100, Y: rng.Float64() * 100}
				live[id] = true
			case k < 8:
				o = Op{Kind: OpMove, ID: id, X: rng.Float64() * 100, Y: rng.Float64() * 100}
			default:
				o = Op{Kind: OpRemove, ID: id}
				live[id] = false
			}
			oracle.apply(o)
			c.add(entry{op: o, at: time.Now()})
			// Cut a window at random points and at the end.
			if rng.Intn(8) == 0 || i == nOps-1 {
				for _, po := range c.flush() {
					folded.applyPending(po)
				}
			}
		}

		for id, want := range oracle {
			got := folded[id]
			if got != want {
				t.Fatalf("trial %d: key %d diverged: coalesced %+v, oracle %+v", trial, id, got, want)
			}
		}
		for id, got := range folded {
			if want := oracle[id]; got != want {
				t.Fatalf("trial %d: key %d diverged: coalesced %+v, oracle %+v", trial, id, got, want)
			}
		}
	}
}
