package ingest

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func op(kind int, id int64) Op { return Op{Kind: kind, ID: id} }

func TestQueueRejectPolicy(t *testing.T) {
	q := NewQueue(4, Reject, 0, nil)
	if err := q.Enqueue(op(OpAdd, 0), op(OpAdd, 0), op(OpAdd, 0), op(OpAdd, 0)); err != nil {
		t.Fatalf("fill: %v", err)
	}
	if err := q.Enqueue(op(OpAdd, 0)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow enqueue = %v, want ErrQueueFull", err)
	}
	if got := q.m.ShedOps.Load(); got != 1 {
		t.Fatalf("ShedOps = %d, want 1", got)
	}
	if got := q.Depth(); got != 4 {
		t.Fatalf("Depth = %d, want 4", got)
	}
}

func TestQueueBatchAtomicity(t *testing.T) {
	q := NewQueue(4, Reject, 0, nil)
	if err := q.Enqueue(op(OpAdd, 0), op(OpAdd, 0)); err != nil {
		t.Fatal(err)
	}
	// Three ops into two free slots: all-or-nothing, so nothing lands.
	if err := q.Enqueue(op(OpMove, 1), op(OpMove, 2), op(OpMove, 3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized batch = %v, want ErrQueueFull", err)
	}
	if got := q.Depth(); got != 2 {
		t.Fatalf("Depth after rejected batch = %d, want 2", got)
	}
	if got := q.m.ShedOps.Load(); got != 3 {
		t.Fatalf("ShedOps = %d, want 3 (the whole batch)", got)
	}
	// A batch larger than the ring can never fit.
	big := make([]Op, 5)
	if err := q.Enqueue(big...); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity batch = %v, want ErrQueueFull", err)
	}
}

func TestQueueBlockPolicyWaitsForSpace(t *testing.T) {
	q := NewQueue(2, Block, 2*time.Second, nil)
	if err := q.Enqueue(op(OpAdd, 0), op(OpAdd, 0)); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		q.popOne(time.Time{})
	}()
	if err := q.Enqueue(op(OpMove, 1)); err != nil {
		t.Fatalf("blocked enqueue after space freed = %v, want nil", err)
	}
}

func TestQueueBlockPolicyDeadline(t *testing.T) {
	q := NewQueue(1, Block, 30*time.Millisecond, nil)
	if err := q.Enqueue(op(OpAdd, 0)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := q.Enqueue(op(OpMove, 1)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("blocked enqueue past deadline = %v, want ErrQueueFull", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("deadline rejection came after %v, want >= ~30ms of blocking", elapsed)
	}
}

func TestQueueDropOldestMove(t *testing.T) {
	q := NewQueue(4, DropOldestMove, 0, nil)
	if err := q.Enqueue(op(OpMove, 1), op(OpAdd, 0), op(OpMove, 2), op(OpRemove, 3)); err != nil {
		t.Fatal(err)
	}
	// Full ring: the oldest move (id 1) is shed to admit the new op.
	if err := q.Enqueue(op(OpAdd, 0)); err != nil {
		t.Fatalf("enqueue with sheddable move = %v, want nil", err)
	}
	if got := q.m.DroppedMove.Load(); got != 1 {
		t.Fatalf("DroppedMove = %d, want 1", got)
	}
	want := []Op{op(OpAdd, 0), op(OpMove, 2), op(OpRemove, 3), op(OpAdd, 0)}
	for i, w := range want {
		e, ok := q.popOne(time.Time{})
		if !ok {
			t.Fatalf("popOne %d: queue empty", i)
		}
		if e.op != w {
			t.Fatalf("popOne %d = %+v, want %+v", i, e.op, w)
		}
	}

	// Adds and removes never shed: a full ring of them rejects.
	q2 := NewQueue(2, DropOldestMove, 0, nil)
	if err := q2.Enqueue(op(OpAdd, 0), op(OpRemove, 5)); err != nil {
		t.Fatal(err)
	}
	if err := q2.Enqueue(op(OpAdd, 0)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("enqueue with no sheddable moves = %v, want ErrQueueFull", err)
	}
}

func TestQueueDropPrefersSupersededMove(t *testing.T) {
	// Move(7) is superseded by a younger Move(7); the strictly oldest move
	// (id 1) is still live and must survive the eviction.
	q := NewQueue(4, DropOldestMove, 0, nil)
	if err := q.Enqueue(op(OpMove, 1), op(OpMove, 7), op(OpAdd, 0), op(OpMove, 7)); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(op(OpRemove, 9)); err != nil {
		t.Fatalf("enqueue with superseded move = %v, want nil", err)
	}
	want := []Op{op(OpMove, 1), op(OpAdd, 0), op(OpMove, 7), op(OpRemove, 9)}
	for i, w := range want {
		e, ok := q.popOne(time.Time{})
		if !ok {
			t.Fatalf("popOne %d: queue empty", i)
		}
		if e.op != w {
			t.Fatalf("popOne %d = %+v, want %+v", i, e.op, w)
		}
	}

	// A Remove behind a Move supersedes it the same way: the move's effect
	// never reaches the index.
	q2 := NewQueue(4, DropOldestMove, 0, nil)
	if err := q2.Enqueue(op(OpMove, 1), op(OpMove, 7), op(OpRemove, 7), op(OpAdd, 0)); err != nil {
		t.Fatal(err)
	}
	if err := q2.Enqueue(op(OpAdd, 2)); err != nil {
		t.Fatalf("enqueue with remove-superseded move = %v, want nil", err)
	}
	want2 := []Op{op(OpMove, 1), op(OpRemove, 7), op(OpAdd, 0), op(OpAdd, 2)}
	for i, w := range want2 {
		e, ok := q2.popOne(time.Time{})
		if !ok {
			t.Fatalf("popOne %d: queue empty", i)
		}
		if e.op != w {
			t.Fatalf("popOne %d = %+v, want %+v", i, e.op, w)
		}
	}
}

func TestQueueCloseSemantics(t *testing.T) {
	q := NewQueue(4, Reject, 0, nil)
	if err := q.Enqueue(op(OpAdd, 0), op(OpMove, 1)); err != nil {
		t.Fatal(err)
	}
	q.Close()
	q.Close() // idempotent
	if err := q.Enqueue(op(OpAdd, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close = %v, want ErrClosed", err)
	}
	// The queued ops drain...
	for i := 0; i < 2; i++ {
		if _, ok := q.popOne(time.Time{}); !ok {
			t.Fatalf("popOne %d after close: want queued op", i)
		}
	}
	// ...then popOne reports closed-and-empty instead of blocking.
	done := make(chan bool, 1)
	go func() {
		_, ok := q.popOne(time.Time{})
		done <- ok
	}()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("popOne on a drained closed queue returned an op")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("popOne blocked on a drained closed queue")
	}
}

func TestQueuePopDeadline(t *testing.T) {
	q := NewQueue(4, Reject, 0, nil)
	start := time.Now()
	if _, ok := q.popOne(start.Add(20 * time.Millisecond)); ok {
		t.Fatal("popOne on an empty queue returned an op")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("popOne returned after %v, want it to wait ~20ms", elapsed)
	}
}

// TestQueueConcurrentConservation hammers the queue from many producers
// against one consumer and checks no operation is lost or duplicated:
// admitted ops == popped ops, and under Reject every submission is either
// admitted or shed.
func TestQueueConcurrentConservation(t *testing.T) {
	const producers = 8
	const perProducer = 500
	q := NewQueue(64, Reject, 0, nil)

	var admitted int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			n := int64(0)
			for i := 0; i < perProducer; i++ {
				if err := q.Enqueue(op(OpMove, int64(pr*perProducer+i))); err == nil {
					n++
				}
			}
			mu.Lock()
			admitted += n
			mu.Unlock()
		}(pr)
	}

	popped := make(chan int64, 1)
	go func() {
		n := int64(0)
		for {
			if _, ok := q.popOne(time.Time{}); !ok {
				break
			}
			n++
		}
		popped <- n
	}()

	wg.Wait()
	q.Close()
	got := <-popped
	if got != admitted {
		t.Fatalf("popped %d ops, admitted %d", got, admitted)
	}
	if shed := q.m.ShedOps.Load(); admitted+shed != producers*perProducer {
		t.Fatalf("admitted %d + shed %d != submitted %d", admitted, shed, producers*perProducer)
	}
}
