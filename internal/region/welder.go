package region

import (
	"math"

	"airindex/internal/geom"
)

// welder merges points that lie within tol of each other into canonical
// vertices. It hashes points to a grid of cell size tol and checks the 3x3
// neighborhood, so any two points within tol land in adjacent cells and are
// guaranteed to be compared.
type welder struct {
	tol  float64
	grid map[[2]int64][]int
	pts  []geom.Point
}

func newWelder(tol float64) *welder {
	return &welder{tol: tol, grid: make(map[[2]int64][]int)}
}

func (w *welder) cell(p geom.Point) [2]int64 {
	return [2]int64{int64(math.Floor(p.X / w.tol)), int64(math.Floor(p.Y / w.tol))}
}

// add returns the canonical vertex index for p, creating one if no existing
// vertex lies within tol.
func (w *welder) add(p geom.Point) int {
	c := w.cell(p)
	for dx := int64(-1); dx <= 1; dx++ {
		for dy := int64(-1); dy <= 1; dy++ {
			for _, id := range w.grid[[2]int64{c[0] + dx, c[1] + dy}] {
				q := w.pts[id]
				if math.Abs(q.X-p.X) <= w.tol && math.Abs(q.Y-p.Y) <= w.tol {
					return id
				}
			}
		}
	}
	id := len(w.pts)
	w.pts = append(w.pts, p)
	w.grid[c] = append(w.grid[c], id)
	return id
}

// points returns the canonical vertex slice.
func (w *welder) points() []geom.Point { return w.pts }
