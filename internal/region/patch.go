package region

import (
	"fmt"
	"math"
	"sort"

	"airindex/internal/geom"
)

// Patcher maintains a canonical Subdivision across generations of a slowly
// changing polygon set (the live Voronoi cells), rebuilding only the welded
// neighborhood a batch of cell updates touches instead of re-welding the
// whole tiling. The patched result is coordinate-identical to what New
// would produce on the full new polygon set — same canonical vertex
// coordinates, same collapsed rings, same region polygons — differing only
// in internal vertex numbering, which nothing downstream observes (the
// D-tree marshal and all boundary extraction work on coordinates).
//
// Why this is exact: New's welder assigns each raw point to the first
// canonical vertex within the weld tolerance, scanning points in global
// order (region index ascending, ring position ascending). Weld outcomes
// therefore only couple points that are chained within tolerance of each
// other. A patch floods the tolerance-proximity component of every changed
// point (old and new), un-welds exactly those points, and replays them in
// the same global order against the surviving canonical vertices. Points
// outside the component cannot match any component vertex (a match implies
// tolerance-adjacency to the vertex's founding point, which would have
// pulled it into the component), so the replay reproduces the from-scratch
// assignment for every point, changed or not.
//
// A Patcher is not safe for concurrent use. Subdivisions it returns remain
// valid after further patches: unchanged regions share their ring and
// polygon slices across generations, the vertex slab is append-only, and
// per-region neighbor arrays are copied on write.
type Patcher struct {
	area geom.Rect
	tol  float64

	// Per-site state, indexed by stable site key.
	live   []bool
	pts    [][]geom.Point // cleaned raw ring points (post Dedup+EnsureCCW)
	assign [][]int32      // canonical vertex id per raw point
	ring   [][]int        // collapsed canonical ring
	nbr    [][]int32      // neighbor site key per ring edge (-1 border)
	poly   []geom.Polygon // canonical polygon (ring coordinates)

	verts   []geom.Point // append-only canonical vertex slab (may hold dead entries)
	vertCnt []int32      // live point references per vertex; 0 = dead

	vgrid map[[2]int64][]int32 // weld grid: cell -> live canonical vertex ids
	pgrid map[[2]int64][]pref  // point grid: cell -> live raw point refs

	edgeOwner map[[2]int32]int32 // directed vertex edge -> owning site key

	broken bool
}

type pref struct{ site, idx int32 }

func polyEqual(a, b geom.Polygon) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return len(a) > 0
}

// NewPatcher returns an empty Patcher; the first Patch call (with every key
// dirty) bootstraps it, replaying the full tiling exactly as New welds it.
func NewPatcher(area geom.Rect) *Patcher {
	return &Patcher{
		area:      area,
		tol:       DefaultWeldTol,
		vgrid:     make(map[[2]int64][]int32),
		pgrid:     make(map[[2]int64][]pref),
		edgeOwner: make(map[[2]int32]int32),
	}
}

// Broken reports whether a previous Patch failed midway; the Patcher must
// be discarded and re-bootstrapped.
func (p *Patcher) Broken() bool { return p.broken }

func (p *Patcher) cellOf(pt geom.Point) [2]int64 {
	return [2]int64{int64(math.Floor(pt.X / p.tol)), int64(math.Floor(pt.Y / p.tol))}
}

// weldAdd mirrors welder.add exactly: first canonical vertex within the
// tolerance box wins, scanning the 3x3 cell neighborhood in fixed order and
// each cell's vertex list in insertion order.
func (p *Patcher) weldAdd(pt geom.Point) int32 {
	c := p.cellOf(pt)
	for dx := int64(-1); dx <= 1; dx++ {
		for dy := int64(-1); dy <= 1; dy++ {
			for _, vid := range p.vgrid[[2]int64{c[0] + dx, c[1] + dy}] {
				q := p.verts[vid]
				if math.Abs(q.X-pt.X) <= p.tol && math.Abs(q.Y-pt.Y) <= p.tol {
					return vid
				}
			}
		}
	}
	vid := int32(len(p.verts))
	p.verts = append(p.verts, pt)
	p.vertCnt = append(p.vertCnt, 0)
	p.vgrid[c] = append(p.vgrid[c], vid)
	return vid
}

func (p *Patcher) vgridRemove(vid int32) {
	c := p.cellOf(p.verts[vid])
	list := p.vgrid[c]
	for i, x := range list {
		if x == vid {
			p.vgrid[c] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

func (p *Patcher) pgridRemove(r pref) {
	c := p.cellOf(p.pts[r.site][r.idx])
	list := p.pgrid[c]
	for i, x := range list {
		if x == r {
			p.pgrid[c] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

func (p *Patcher) grow(maxKey int) {
	for len(p.live) <= maxKey {
		p.live = append(p.live, false)
		p.pts = append(p.pts, nil)
		p.assign = append(p.assign, nil)
		p.ring = append(p.ring, nil)
		p.nbr = append(p.nbr, nil)
		p.poly = append(p.poly, nil)
	}
}

// Patch advances the tiling one generation. keys and polys are the full
// live set in ascending key order with the current raw polygons; dirty is
// the ascending keys whose raw polygon changed or that were inserted this
// generation; removed is the ascending keys deleted this generation. It
// returns the new Subdivision (region order = key order) and the ascending
// keys whose canonical polygon actually changed — the dirty set downstream
// index patching needs, which can both shrink (welding absorbed a sub-
// tolerance wiggle) and grow (a neighbor's canonical corner moved) relative
// to the raw dirty set. On error the Patcher is broken and must be
// replaced.
func (p *Patcher) Patch(keys []int, polys []geom.Polygon, dirty, removed []int) (*Subdivision, []int, error) {
	if p.broken {
		return nil, nil, fmt.Errorf("region: patcher broken by earlier failure")
	}
	if len(keys) == 0 {
		return nil, nil, fmt.Errorf("region: no polygons")
	}
	fail := func(err error) (*Subdivision, []int, error) {
		p.broken = true
		return nil, nil, err
	}
	maxKey := keys[len(keys)-1]
	for _, k := range removed {
		if k > maxKey {
			maxKey = k
		}
	}
	p.grow(maxKey)

	// 1. Clean the new polygons of dirty sites, exactly as New does.
	cleaned := make(map[int]geom.Polygon, len(dirty))
	pos := 0
	for _, k := range dirty {
		for pos < len(keys) && keys[pos] < k {
			pos++
		}
		if pos >= len(keys) || keys[pos] != k {
			return fail(fmt.Errorf("region: dirty key %d not live", k))
		}
		c := polys[pos].Clone().Dedup().EnsureCCW()
		if len(c) < 3 {
			return fail(fmt.Errorf("region: polygon of key %d degenerate after dedup (%d vertices)", k, len(c)))
		}
		cleaned[k] = c
	}

	dirtySet := make(map[int32]bool, len(dirty))
	for _, k := range dirty {
		dirtySet[int32(k)] = true
	}
	removedSet := make(map[int32]bool, len(removed))
	for _, k := range removed {
		if !p.live[k] {
			return fail(fmt.Errorf("region: removed key %d not live", k))
		}
		removedSet[int32(k)] = true
	}

	// 2. Flood the tolerance-proximity component of every changed point.
	// Seeds: the old points of dirty and removed sites (they leave the
	// welder) and the new points of dirty sites (they enter it). The
	// closure is over the current point set: any live point within the
	// tolerance box of a component point joins, transitively.
	marked := make(map[pref]bool)
	var queue []geom.Point
	for _, k := range append(append([]int(nil), dirty...), removed...) {
		if !p.live[k] {
			continue // inserted this generation: no old points
		}
		for idx := range p.pts[k] {
			r := pref{int32(k), int32(idx)}
			if !marked[r] {
				marked[r] = true
				queue = append(queue, p.pts[k][idx])
			}
		}
	}
	for _, k := range dirty {
		queue = append(queue, cleaned[k]...)
	}
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		cc := p.cellOf(c)
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				for _, r := range p.pgrid[[2]int64{cc[0] + dx, cc[1] + dy}] {
					if marked[r] {
						continue
					}
					q := p.pts[r.site][r.idx]
					if math.Abs(q.X-c.X) <= p.tol && math.Abs(q.Y-c.Y) <= p.tol {
						marked[r] = true
						queue = append(queue, q)
					}
				}
			}
		}
	}

	// 3. The rebuild set: dirty sites plus every clean site owning a
	// component point (its assignments must be replayed even if its
	// polygon ends up unchanged).
	rebuildSet := make(map[int32]bool, len(dirty))
	for _, k := range dirty {
		rebuildSet[int32(k)] = true
	}
	for r := range marked {
		if !dirtySet[r.site] && !removedSet[r.site] {
			rebuildSet[r.site] = true
		}
	}
	rebuild := make([]int32, 0, len(rebuildSet))
	for k := range rebuildSet {
		rebuild = append(rebuild, k)
	}
	sort.Slice(rebuild, func(i, j int) bool { return rebuild[i] < rebuild[j] })

	// 4. Un-weld the component: release every marked point's vertex
	// reference; vertices with no references left leave the weld grid.
	for r := range marked {
		v := p.assign[r.site][r.idx]
		p.vertCnt[v]--
		if p.vertCnt[v] == 0 {
			p.vgridRemove(v)
		}
		p.pgridRemove(r)
	}

	// 5. Delete the old directed edges of every region being rebuilt or
	// removed (their rings are about to change), remembering them so step 8
	// can detect clean regions whose across-the-edge owner changed.
	type edgeKey = [2]int32
	var deleted []edgeKey
	for _, k := range rebuild {
		if !p.live[k] {
			continue
		}
		ring := p.ring[k]
		for j := range ring {
			e := edgeKey{int32(ring[j]), int32(ring[(j+1)%len(ring)])}
			delete(p.edgeOwner, e)
			deleted = append(deleted, e)
		}
	}
	for _, k := range removed {
		ring := p.ring[k]
		for j := range ring {
			e := edgeKey{int32(ring[j]), int32(ring[(j+1)%len(ring)])}
			delete(p.edgeOwner, e)
			deleted = append(deleted, e)
		}
	}

	// Retire removed sites (their points were all marked, hence released).
	for _, k := range removed {
		p.live[k] = false
		p.pts[k], p.assign[k], p.ring[k], p.nbr[k], p.poly[k] = nil, nil, nil, nil, nil
	}

	// 6. Replay the component in global scan order (site key ascending,
	// ring position ascending) — the order New welds in — so first-match
	// outcomes are reproduced exactly.
	oldPoly := make(map[int32]geom.Polygon, len(rebuild))
	for _, k := range rebuild {
		if p.live[k] {
			oldPoly[k] = p.poly[k]
		}
		if dirtySet[k] {
			p.pts[k] = cleaned[int(k)]
			p.assign[k] = make([]int32, len(p.pts[k]))
			for idx := range p.pts[k] {
				pt := p.pts[k][idx]
				vid := p.weldAdd(pt)
				p.assign[k][idx] = vid
				p.vertCnt[vid]++
				p.pgrid[p.cellOf(pt)] = append(p.pgrid[p.cellOf(pt)], pref{k, int32(idx)})
			}
			p.live[k] = true
			continue
		}
		// Clean site with marked points: replay just those assignments.
		var idxs []int
		for idx := range p.pts[k] {
			if marked[pref{k, int32(idx)}] {
				idxs = append(idxs, idx)
			}
		}
		for _, idx := range idxs {
			pt := p.pts[k][idx]
			vid := p.weldAdd(pt)
			p.assign[k][idx] = vid
			p.vertCnt[vid]++
			p.pgrid[p.cellOf(pt)] = append(p.pgrid[p.cellOf(pt)], pref{k, int32(idx)})
		}
	}

	// 7. Rebuild rings, polygons, and edges for the rebuild set, collapsing
	// welded duplicates exactly as New does.
	var canonDirty []int
	for _, k := range rebuild {
		ring := make([]int, 0, len(p.pts[k]))
		for _, vid := range p.assign[k] {
			if n := len(ring); n > 0 && ring[n-1] == int(vid) {
				continue
			}
			ring = append(ring, int(vid))
		}
		for len(ring) > 1 && ring[0] == ring[len(ring)-1] {
			ring = ring[:len(ring)-1]
		}
		if len(ring) < 3 {
			return fail(fmt.Errorf("region: polygon of key %d degenerate after welding", k))
		}
		p.ring[k] = ring
		poly := make(geom.Polygon, len(ring))
		for j, v := range ring {
			poly[j] = p.verts[v]
		}
		p.poly[k] = poly
		for j := range ring {
			e := edgeKey{int32(ring[j]), int32(ring[(j+1)%len(ring)])}
			if prev, dup := p.edgeOwner[e]; dup {
				return fail(fmt.Errorf("region: directed edge (%d,%d) owned by both key %d and %d", e[0], e[1], prev, k))
			}
			p.edgeOwner[e] = k
		}
		if !polyEqual(poly, oldPoly[k]) {
			canonDirty = append(canonDirty, int(k))
		}
	}

	// 8. Neighbor keys for rebuilt regions, plus copy-on-write fix-ups on
	// clean regions whose across-the-edge owner changed (the old owner was
	// necessarily rebuilt or removed, so every such edge is visible here).
	cowed := make(map[int32]bool)
	cow := func(t int32) {
		if !cowed[t] {
			p.nbr[t] = append([]int32(nil), p.nbr[t]...)
			cowed[t] = true
		}
	}
	setNbr := func(t int32, v, u int, owner int32) {
		ring := p.ring[t]
		for j := range ring {
			if ring[j] == v && ring[(j+1)%len(ring)] == u {
				if p.nbr[t][j] != owner {
					cow(t)
					p.nbr[t][j] = owner
				}
				return
			}
		}
	}
	for _, k := range rebuild {
		ring := p.ring[k]
		nbr := make([]int32, len(ring))
		for j := range ring {
			u, v := ring[j], ring[(j+1)%len(ring)]
			t, ok := p.edgeOwner[edgeKey{int32(v), int32(u)}]
			if !ok {
				nbr[j] = -1
				continue
			}
			nbr[j] = t
			if !rebuildSet[t] {
				setNbr(t, v, u, k) // clean neighbor: make its back-reference agree
			}
		}
		p.nbr[k] = nbr
	}
	// Deleted edges that were not re-covered: the clean twin now borders
	// nothing (cannot happen in a valid tiling, but keep the relation
	// coherent rather than stale).
	for _, e := range deleted {
		if _, ok := p.edgeOwner[e]; ok {
			continue
		}
		if t, ok := p.edgeOwner[edgeKey{e[1], e[0]}]; ok && !rebuildSet[t] {
			setNbr(t, int(e[0]), int(e[1]), -1)
		}
	}

	// 9. Assemble the new generation. Clean regions share ring, polygon,
	// and neighbor slices with prior generations.
	n := len(keys)
	sub := &Subdivision{
		Area:    p.area,
		Regions: make([]Region, n),
		Verts:   p.verts[:len(p.verts):len(p.verts)],
		rings:   make([][]int, n),
		keyOf:   make([]int32, n),
		maxKey:  int32(len(p.live)) - 1,
		nbrKey:  make([][]int32, n),
	}
	for i, k := range keys {
		if !p.live[k] {
			return fail(fmt.Errorf("region: live key %d has no cell", k))
		}
		sub.Regions[i] = Region{ID: i, Poly: p.poly[k]}
		sub.rings[i] = p.ring[k]
		sub.keyOf[i] = int32(k)
		sub.nbrKey[i] = p.nbr[k]
	}
	sort.Ints(canonDirty)
	return sub, canonDirty, nil
}
