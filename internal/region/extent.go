package region

import "airindex/internal/geom"

// BoundaryScratch is reusable state for BoundarySegmentsInto: an
// epoch-marked membership array indexed by stable region key. Each caller
// (e.g. each D-tree build worker) owns its own scratch; the zero value is
// ready to use.
type BoundaryScratch struct {
	mark  []int32
	epoch int32
}

// BoundarySegments returns the boundary edges of the union of the given
// regions: every edge owned by a region in the set whose twin either does
// not exist (service-area border) or belongs to a region outside the set.
// This is the "extent" of a subspace in the D-tree partition algorithm
// (Algorithm 1, line 3); the extent may consist of several closed loops.
func (s *Subdivision) BoundarySegments(ids []int) []geom.Segment {
	var sc BoundaryScratch
	return s.BoundarySegmentsInto(ids, &sc, nil)
}

// BoundarySegmentsInto is BoundarySegments with caller-owned scratch and
// output slice (appended to), for hot paths: no maps, no per-call
// allocation once the scratch and output have grown to steady state. The
// segment order is identical to BoundarySegments.
func (s *Subdivision) BoundarySegmentsInto(ids []int, sc *BoundaryScratch, out []geom.Segment) []geom.Segment {
	if int32(len(sc.mark)) <= s.maxKey {
		sc.mark = make([]int32, s.maxKey+1)
		sc.epoch = 0
	}
	sc.epoch++
	epoch := sc.epoch
	if s.keyOf == nil {
		for _, id := range ids {
			sc.mark[id] = epoch
		}
	} else {
		for _, id := range ids {
			sc.mark[s.keyOf[id]] = epoch
		}
	}
	for _, id := range ids {
		ring := s.rings[id]
		nbr := s.nbrKey[id]
		n := len(ring)
		for j := 0; j < n; j++ {
			if k := nbr[j]; k >= 0 && sc.mark[k] == epoch {
				continue
			}
			u, v := ring[j], ring[(j+1)%n]
			out = append(out, geom.Segment{A: s.Verts[u], B: s.Verts[v]})
		}
	}
	return out
}

// BoundaryEntry names one surviving edge of a region-set boundary by its
// owner and ring position instead of its coordinates: the edge from
// ring[Edge] to ring[Edge+1] of the region whose stable key is Owner. The
// incremental D-tree rebuild memoizes extents in this form — stable keys
// survive region renumbering between generations, and clean regions share
// their ring slices across patched subdivisions, so a cached entry
// reproduces the exact segment BoundarySegments would emit.
type BoundaryEntry struct {
	Owner int32 // stable region key
	Edge  int32 // ring edge index
}

// BoundaryEntriesInto is BoundarySegmentsInto emitting both the segments
// and the matching (owner, edge) entries, in the identical order.
func (s *Subdivision) BoundaryEntriesInto(ids []int, sc *BoundaryScratch, ents []BoundaryEntry, segs []geom.Segment) ([]BoundaryEntry, []geom.Segment) {
	if int32(len(sc.mark)) <= s.maxKey {
		sc.mark = make([]int32, s.maxKey+1)
		sc.epoch = 0
	}
	sc.epoch++
	epoch := sc.epoch
	for _, id := range ids {
		sc.mark[s.Key(id)] = epoch
	}
	for _, id := range ids {
		key := int32(s.Key(id))
		ring := s.rings[id]
		nbr := s.nbrKey[id]
		n := len(ring)
		for j := 0; j < n; j++ {
			if k := nbr[j]; k >= 0 && sc.mark[k] == epoch {
				continue
			}
			u, v := ring[j], ring[(j+1)%n]
			ents = append(ents, BoundaryEntry{Owner: key, Edge: int32(j)})
			segs = append(segs, geom.Segment{A: s.Verts[u], B: s.Verts[v]})
		}
	}
	return ents, segs
}

// NbrKeys returns, per ring edge of region id, the stable key of the region
// on the other side (-1 on the service-area border). Callers must not
// modify the returned slice.
func (s *Subdivision) NbrKeys(id int) []int32 { return s.nbrKey[id] }

// EdgeSegment returns the ring edge j of region id as a segment, exactly as
// BoundarySegments would emit it.
func (s *Subdivision) EdgeSegment(id, j int) geom.Segment {
	ring := s.rings[id]
	u, v := ring[j], ring[(j+1)%len(ring)]
	return geom.Segment{A: s.Verts[u], B: s.Verts[v]}
}

// SharedBorder returns the segments separating the two given region sets:
// edges owned by a region in left whose twin belongs to a region in right.
func (s *Subdivision) SharedBorder(left, right []int) []geom.Segment {
	inRight := make(map[int32]bool, len(right))
	for _, id := range right {
		inRight[int32(s.Key(id))] = true
	}
	var out []geom.Segment
	for _, id := range left {
		ring := s.rings[id]
		nbr := s.nbrKey[id]
		n := len(ring)
		for j := 0; j < n; j++ {
			if k := nbr[j]; k >= 0 && inRight[k] {
				out = append(out, geom.Segment{A: s.Verts[ring[j]], B: s.Verts[ring[(j+1)%n]]})
			}
		}
	}
	return out
}

// UniqueEdges returns every undirected edge of the subdivision exactly once,
// together with the regions above/below resolution needed by the trapezoidal
// map: for each returned edge, owner is the region owning the lexicographically
// forward direction and neighbor the region on the other side (-1 outside).
type UniqueEdge struct {
	A, B     geom.Point // A < B lexicographically
	Forward  int        // region owning directed edge A->B (on its left), -1 if none
	Backward int        // region owning directed edge B->A, -1 if none
}

// UniqueEdges enumerates the undirected edges of the subdivision in a
// deterministic order (ring order over regions), so randomized consumers
// that shuffle the result are reproducible given their seed.
func (s *Subdivision) UniqueEdges() []UniqueEdge {
	s.ensureTwin()
	seen := make(map[[2]int]bool, len(s.twin))
	var out []UniqueEdge
	for _, ring := range s.rings {
		n := len(ring)
		for j := 0; j < n; j++ {
			u, v := ring[j], ring[(j+1)%n]
			key := [2]int{min(u, v), max(u, v)}
			if seen[key] {
				continue
			}
			seen[key] = true
			a, b := s.Verts[key[0]], s.Verts[key[1]]
			if b.Less(a) {
				a, b = b, a
				key[0], key[1] = key[1], key[0]
			}
			out = append(out, UniqueEdge{
				A:        a,
				B:        b,
				Forward:  s.EdgeOwner(key[0], key[1]),
				Backward: s.EdgeOwner(key[1], key[0]),
			})
		}
	}
	return out
}
