package region

import "airindex/internal/geom"

// BoundarySegments returns the boundary edges of the union of the given
// regions: every edge owned by a region in the set whose twin either does
// not exist (service-area border) or belongs to a region outside the set.
// This is the "extent" of a subspace in the D-tree partition algorithm
// (Algorithm 1, line 3); the extent may consist of several closed loops.
func (s *Subdivision) BoundarySegments(ids []int) []geom.Segment {
	inSet := make(map[int]bool, len(ids))
	for _, id := range ids {
		inSet[id] = true
	}
	var out []geom.Segment
	for _, id := range ids {
		ring := s.rings[id]
		n := len(ring)
		for j := 0; j < n; j++ {
			u, v := ring[j], ring[(j+1)%n]
			if nb := s.Neighbor(u, v); nb >= 0 && inSet[nb] {
				continue
			}
			out = append(out, geom.Segment{A: s.Verts[u], B: s.Verts[v]})
		}
	}
	return out
}

// SharedBorder returns the segments separating the two given region sets:
// edges owned by a region in left whose twin belongs to a region in right.
func (s *Subdivision) SharedBorder(left, right []int) []geom.Segment {
	inRight := make(map[int]bool, len(right))
	for _, id := range right {
		inRight[id] = true
	}
	var out []geom.Segment
	for _, id := range left {
		ring := s.rings[id]
		n := len(ring)
		for j := 0; j < n; j++ {
			u, v := ring[j], ring[(j+1)%n]
			if nb := s.Neighbor(u, v); nb >= 0 && inRight[nb] {
				out = append(out, geom.Segment{A: s.Verts[u], B: s.Verts[v]})
			}
		}
	}
	return out
}

// UniqueEdges returns every undirected edge of the subdivision exactly once,
// together with the regions above/below resolution needed by the trapezoidal
// map: for each returned edge, owner is the region owning the lexicographically
// forward direction and neighbor the region on the other side (-1 outside).
type UniqueEdge struct {
	A, B     geom.Point // A < B lexicographically
	Forward  int        // region owning directed edge A->B (on its left), -1 if none
	Backward int        // region owning directed edge B->A, -1 if none
}

// UniqueEdges enumerates the undirected edges of the subdivision in a
// deterministic order (ring order over regions), so randomized consumers
// that shuffle the result are reproducible given their seed.
func (s *Subdivision) UniqueEdges() []UniqueEdge {
	seen := make(map[[2]int]bool, len(s.twin))
	var out []UniqueEdge
	for _, ring := range s.rings {
		n := len(ring)
		for j := 0; j < n; j++ {
			u, v := ring[j], ring[(j+1)%n]
			key := [2]int{min(u, v), max(u, v)}
			if seen[key] {
				continue
			}
			seen[key] = true
			a, b := s.Verts[key[0]], s.Verts[key[1]]
			if b.Less(a) {
				a, b = b, a
				key[0], key[1] = key[1], key[0]
			}
			out = append(out, UniqueEdge{
				A:        a,
				B:        b,
				Forward:  s.EdgeOwner(key[0], key[1]),
				Backward: s.EdgeOwner(key[1], key[0]),
			})
		}
	}
	return out
}
