// Package region models the location-dependent dataset of the paper: a set
// of data regions (polygonal valid scopes) that exactly tile a rectangular
// service area (Definition 1). It provides the canonical, vertex-welded
// subdivision representation every index structure consumes, the shared-edge
// adjacency map the D-tree partition algorithm needs to extract subspace
// extents, and a brute-force locator used as ground truth in tests.
package region

import (
	"fmt"
	"math"
	"sync"

	"airindex/internal/geom"
)

// Region is one data instance's valid scope. ID is the data instance
// identifier (the index of its data bucket on the broadcast channel).
type Region struct {
	ID   int
	Poly geom.Polygon
}

// Bounds returns the MBR of the region.
func (r Region) Bounds() geom.Rect { return r.Poly.Bounds() }

// Contains reports whether p lies in the region (boundary inclusive).
func (r Region) Contains(p geom.Point) bool { return r.Poly.Contains(p) }

// Subdivision is a validated, canonicalized planar subdivision of a service
// area into data regions. Vertices shared between adjacent regions are
// welded to identical float64 coordinates and indexed, so shared edges can
// be recognized exactly.
type Subdivision struct {
	Area    geom.Rect
	Regions []Region

	// Verts holds the canonical vertex coordinates; rings holds, per region,
	// the ring of canonical vertex indices (same order as Region.Poly).
	//
	// Patched subdivisions (see Patcher) share the Verts backing array with
	// their predecessors append-only: entries below an older generation's
	// length are never rewritten, and ids of vertices no longer referenced
	// by any ring are simply retired, so Verts may contain dead entries.
	Verts []geom.Point
	rings [][]int

	// keyOf maps region index -> stable external key (the site id, for
	// subdivisions maintained across generations). nil means the identity
	// mapping (region index is its own key), which New produces.
	keyOf []int32
	// maxKey is the largest key value in keyOf (N-1 under identity);
	// BoundarySegments sizes its membership scratch from it.
	maxKey int32
	// nbrKey holds, per region and ring edge j (from ring[j] to ring[j+1]),
	// the stable key of the region on the other side, or -1 on the
	// service-area border. It is the adjacency relation BoundarySegments
	// walks; unlike twin it survives region renumbering, so patched
	// generations share the slices of unchanged regions.
	nbrKey [][]int32

	// twin maps a directed edge (u,v) to the region owning it (regions are
	// CCW, so the owner lies to the left of u->v). Patched subdivisions
	// build it on first use (ensureTwin); New builds it eagerly.
	twin     map[[2]int]int
	twinOnce sync.Once
}

// DefaultWeldTol is the default vertex-welding tolerance. Voronoi cells are
// constructed independently per site, so coordinates of a shared vertex can
// disagree by accumulated rounding; anything within this distance is treated
// as one vertex.
const DefaultWeldTol = 1e-5

// Option configures subdivision construction.
type Option func(*buildConfig)

type buildConfig struct {
	weldTol   float64
	insertCol bool
}

// WithWeldTol overrides the vertex-welding tolerance.
func WithWeldTol(tol float64) Option { return func(c *buildConfig) { c.weldTol = tol } }

// WithTJunctionRepair enables insertion of canonical vertices that lie in
// the interior of another region's edge (T-junctions), which hand-authored
// subdivisions may contain. Voronoi subdivisions never need this.
func WithTJunctionRepair() Option { return func(c *buildConfig) { c.insertCol = true } }

// New builds a Subdivision from raw polygons. Polygons are deduplicated,
// forced counter-clockwise, and their vertices welded. The i-th polygon
// becomes region ID i.
func New(area geom.Rect, polys []geom.Polygon, opts ...Option) (*Subdivision, error) {
	cfg := buildConfig{weldTol: DefaultWeldTol}
	for _, o := range opts {
		o(&cfg)
	}
	if len(polys) == 0 {
		return nil, fmt.Errorf("region: no polygons")
	}
	cleaned := make([]geom.Polygon, len(polys))
	for i, pg := range polys {
		c := pg.Clone().Dedup().EnsureCCW()
		if len(c) < 3 {
			return nil, fmt.Errorf("region: polygon %d degenerate after dedup (%d vertices)", i, len(c))
		}
		cleaned[i] = c
	}

	w := newWelder(cfg.weldTol)
	rings := make([][]int, len(cleaned))
	for i, pg := range cleaned {
		ring := make([]int, 0, len(pg))
		for _, p := range pg {
			id := w.add(p)
			if n := len(ring); n > 0 && ring[n-1] == id {
				continue // welding collapsed consecutive vertices
			}
			ring = append(ring, id)
		}
		for len(ring) > 1 && ring[0] == ring[len(ring)-1] {
			ring = ring[:len(ring)-1]
		}
		if len(ring) < 3 {
			return nil, fmt.Errorf("region: polygon %d degenerate after welding", i)
		}
		rings[i] = ring
	}
	verts := w.points()

	if cfg.insertCol {
		rings = insertTJunctions(verts, rings)
	}

	s := &Subdivision{
		Area:  area,
		Verts: verts,
		rings: rings,
		twin:  make(map[[2]int]int),
	}
	s.Regions = make([]Region, len(rings))
	for i, ring := range rings {
		poly := make(geom.Polygon, len(ring))
		for j, v := range ring {
			poly[j] = verts[v]
		}
		s.Regions[i] = Region{ID: i, Poly: poly}
		for j := range ring {
			u, v := ring[j], ring[(j+1)%len(ring)]
			if prev, dup := s.twin[[2]int{u, v}]; dup {
				return nil, fmt.Errorf("region: directed edge (%d,%d) owned by both region %d and %d", u, v, prev, i)
			}
			s.twin[[2]int{u, v}] = i
		}
	}
	s.maxKey = int32(len(rings)) - 1
	s.nbrKey = make([][]int32, len(rings))
	for i, ring := range rings {
		nbr := make([]int32, len(ring))
		for j := range ring {
			nbr[j] = int32(s.Neighbor(ring[j], ring[(j+1)%len(ring)]))
		}
		s.nbrKey[i] = nbr
	}
	return s, nil
}

// Key returns the stable external key of region id (the id itself for
// subdivisions built by New, the site id for patched generations).
func (s *Subdivision) Key(id int) int {
	if s.keyOf == nil {
		return id
	}
	return int(s.keyOf[id])
}

// MaxKey returns the largest stable key in the subdivision.
func (s *Subdivision) MaxKey() int { return int(s.maxKey) }

// ensureTwin builds the directed-edge ownership map on first use. Patched
// subdivisions defer it because the hot incremental-rebuild path only needs
// nbrKey; twin is for validators and the baseline index builders.
func (s *Subdivision) ensureTwin() {
	s.twinOnce.Do(func() {
		if s.twin != nil {
			return
		}
		twin := make(map[[2]int]int, len(s.Verts)*3)
		for i, ring := range s.rings {
			for j := range ring {
				twin[[2]int{ring[j], ring[(j+1)%len(ring)]}] = i
			}
		}
		s.twin = twin
	})
}

// N returns the number of regions.
func (s *Subdivision) N() int { return len(s.Regions) }

// Ring returns the canonical vertex-index ring of region id.
func (s *Subdivision) Ring(id int) []int { return s.rings[id] }

// Neighbor returns the region on the other side of the directed edge (u,v)
// owned by some region, or -1 when (v,u) is unowned (service-area boundary).
func (s *Subdivision) Neighbor(u, v int) int {
	s.ensureTwin()
	if r, ok := s.twin[[2]int{v, u}]; ok {
		return r
	}
	return -1
}

// EdgeOwner returns the region owning directed edge (u,v), or -1.
func (s *Subdivision) EdgeOwner(u, v int) int {
	s.ensureTwin()
	if r, ok := s.twin[[2]int{u, v}]; ok {
		return r
	}
	return -1
}

// Locate returns the ID of the region containing p using brute-force scan
// with a bounding-box prefilter. It is the ground truth the index structures
// are tested against. Returns -1 if no region contains p.
func (s *Subdivision) Locate(p geom.Point) int {
	for i := range s.Regions {
		if !s.Regions[i].Bounds().Contains(p) {
			continue
		}
		if s.Regions[i].Poly.Contains(p) {
			return i
		}
	}
	return -1
}

// Validate checks the subdivision invariants of Definition 1: regions cover
// the service area (areas sum to the area of A within tolerance), every
// interior edge is shared by exactly two regions with opposite orientation,
// and all rings are counter-clockwise.
func (s *Subdivision) Validate() error {
	s.ensureTwin()
	var sum float64
	for i := range s.Regions {
		a := s.Regions[i].Poly.SignedArea()
		if a <= 0 {
			return fmt.Errorf("region %d: not counter-clockwise (signed area %g)", i, a)
		}
		sum += a
	}
	total := s.Area.Area()
	if rel := math.Abs(sum-total) / total; rel > 1e-6 {
		return fmt.Errorf("regions cover %.9g of service area %.9g (relative gap %.3g)", sum, total, rel)
	}
	for e, owner := range s.twin {
		if _, ok := s.twin[[2]int{e[1], e[0]}]; ok {
			continue // interior edge with a twin
		}
		// Boundary edge: both endpoints must lie on the service-area border.
		for _, vid := range e {
			p := s.Verts[vid]
			if !onRectBorder(p, s.Area) {
				return fmt.Errorf("region %d: unmatched edge (%d,%d) with vertex %v off the service-area border", owner, e[0], e[1], p)
			}
		}
	}
	return nil
}

// TotalDataRegions mirrors the paper's N.
func (s *Subdivision) TotalDataRegions() int { return len(s.Regions) }

func onRectBorder(p geom.Point, r geom.Rect) bool {
	const tol = 1e-6
	onX := math.Abs(p.X-r.MinX) <= tol || math.Abs(p.X-r.MaxX) <= tol
	onY := math.Abs(p.Y-r.MinY) <= tol || math.Abs(p.Y-r.MaxY) <= tol
	inX := p.X >= r.MinX-tol && p.X <= r.MaxX+tol
	inY := p.Y >= r.MinY-tol && p.Y <= r.MaxY+tol
	return (onX && inY) || (onY && inX)
}

// insertTJunctions inserts any canonical vertex that lies strictly inside
// another ring's edge into that edge, so both sides of a border list the
// same vertex sequence.
func insertTJunctions(verts []geom.Point, rings [][]int) [][]int {
	out := make([][]int, len(rings))
	for i, ring := range rings {
		n := len(ring)
		rebuilt := make([]int, 0, n)
		for j := 0; j < n; j++ {
			u, v := ring[j], ring[(j+1)%n]
			rebuilt = append(rebuilt, u)
			seg := geom.Segment{A: verts[u], B: verts[v]}
			// Collect vertices strictly interior to this edge.
			var mids []int
			for w := range verts {
				if w == u || w == v {
					continue
				}
				p := verts[w]
				if seg.Contains(p) && !p.Eq(seg.A) && !p.Eq(seg.B) {
					mids = append(mids, w)
				}
			}
			// Order along the edge by distance from u.
			for a := 0; a < len(mids); a++ {
				for b := a + 1; b < len(mids); b++ {
					if verts[mids[b]].Dist2(seg.A) < verts[mids[a]].Dist2(seg.A) {
						mids[a], mids[b] = mids[b], mids[a]
					}
				}
			}
			rebuilt = append(rebuilt, mids...)
		}
		out[i] = rebuilt
	}
	return out
}
