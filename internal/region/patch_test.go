package region

import (
	"math/rand"
	"testing"

	"airindex/internal/geom"
)

// patchHarness drives a Patcher and an independent from-scratch New over
// the same evolving polygon set and asserts coordinate identity.
type patchHarness struct {
	t     *testing.T
	area  geom.Rect
	p     *Patcher
	keys  []int
	polys map[int]geom.Polygon
	next  int
}

func newPatchHarness(t *testing.T, area geom.Rect, polys []geom.Polygon) *patchHarness {
	h := &patchHarness{t: t, area: area, p: NewPatcher(area), polys: make(map[int]geom.Polygon)}
	var dirty []int
	for i, pg := range polys {
		h.keys = append(h.keys, i)
		h.polys[i] = pg
		dirty = append(dirty, i)
	}
	h.next = len(polys)
	h.step(dirty, nil)
	return h
}

// step applies one generation through the patcher and cross-checks it
// against region.New on the same polygon set.
func (h *patchHarness) step(dirty, removed []int) {
	h.t.Helper()
	var flat []geom.Polygon
	for _, k := range h.keys {
		flat = append(flat, h.polys[k])
	}
	sub, canonDirty, err := h.p.Patch(h.keys, flat, dirty, removed)
	if err != nil {
		h.t.Fatalf("patch: %v", err)
	}
	want, err := New(h.area, flat)
	if err != nil {
		h.t.Fatalf("scratch: %v", err)
	}
	if sub.N() != want.N() {
		h.t.Fatalf("patched %d regions, scratch %d", sub.N(), want.N())
	}
	for i := range want.Regions {
		if !polyEqual(sub.Regions[i].Poly, want.Regions[i].Poly) {
			h.t.Fatalf("region %d (key %d): patched poly %v != scratch %v",
				i, sub.Key(i), sub.Regions[i].Poly, want.Regions[i].Poly)
		}
	}
	// canonDirty must cover every region whose canonical polygon changed.
	// (Checked implicitly by the next generation's identity: a missed dirty
	// region would splice stale coordinates. Here check it is a subset of
	// live keys and sorted.)
	for i := 1; i < len(canonDirty); i++ {
		if canonDirty[i-1] >= canonDirty[i] {
			h.t.Fatalf("canonDirty not strictly ascending: %v", canonDirty)
		}
	}
	// Boundary extraction must agree on random subsets (this exercises
	// nbrKey, including copy-on-write fixups on clean regions).
	rng := rand.New(rand.NewSource(int64(sub.N())))
	for trial := 0; trial < 8; trial++ {
		var ids []int
		for id := 0; id < sub.N(); id++ {
			if rng.Intn(2) == 0 {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			continue
		}
		got := sub.BoundarySegments(ids)
		exp := want.BoundarySegments(ids)
		if len(got) != len(exp) {
			h.t.Fatalf("subset %v: %d boundary segments patched, %d scratch", ids, len(got), len(exp))
		}
		for j := range got {
			if got[j] != exp[j] {
				h.t.Fatalf("subset boundary segment %d: patched %v, scratch %v", j, got[j], exp[j])
			}
		}
	}
}

// voronoiPolys builds the Voronoi tiling of the given sites.
func voronoiPolys(t *testing.T, area geom.Rect, sites []geom.Point) []geom.Polygon {
	t.Helper()
	polys := make([]geom.Polygon, len(sites))
	for i, s := range sites {
		cell := area.Polygon()
		for j, o := range sites {
			if i == j {
				continue
			}
			cell = geom.ClipHalfPlane(cell, geom.Bisector(s, o))
			if cell == nil {
				t.Fatalf("site %d has empty cell", i)
			}
		}
		polys[i] = cell
	}
	return polys
}

func randomPts(n int, seed int64, area geom.Rect) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(area.MinX+rng.Float64()*(area.MaxX-area.MinX),
			area.MinY+rng.Float64()*(area.MaxY-area.MinY))
	}
	return pts
}

// TestPatcherMatchesNewUnderChurn evolves a Voronoi tiling through random
// site churn, patching the changed cells each step, and requires the
// patched subdivision to be coordinate-identical to a from-scratch New.
func TestPatcherMatchesNewUnderChurn(t *testing.T) {
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		sites := map[int]geom.Point{}
		pts := randomPts(12, seed*7919+13, area)
		for i, p := range pts {
			sites[i] = p
		}
		h := newPatchHarness(t, area, voronoiPolys(t, area, pts))

		for step := 0; step < 25; step++ {
			var dirty, removed []int
			switch op := rng.Intn(3); {
			case op == 0 || len(sites) < 5: // add
				id := h.next
				h.next++
				sites[id] = geom.Pt(area.MinX+rng.Float64()*1000, area.MinY+rng.Float64()*1000)
				h.keys = append(h.keys, id)
			case op == 1: // remove a random live site
				ids := h.keys
				victim := ids[rng.Intn(len(ids))]
				delete(sites, victim)
				removed = append(removed, victim)
				var nk []int
				for _, k := range h.keys {
					if k != victim {
						nk = append(nk, k)
					}
				}
				h.keys = nk
			default: // move
				ids := h.keys
				victim := ids[rng.Intn(len(ids))]
				sites[victim] = geom.Pt(area.MinX+rng.Float64()*1000, area.MinY+rng.Float64()*1000)
			}
			// Recompute all cells from scratch; dirty = cells whose raw
			// polygon changed (what voronoi.Maintainer reports).
			var livePts []geom.Point
			for _, k := range h.keys {
				livePts = append(livePts, sites[k])
			}
			polys := voronoiPolys(t, area, livePts)
			old := h.polys
			h.polys = make(map[int]geom.Polygon, len(h.keys))
			for i, k := range h.keys {
				h.polys[k] = polys[i]
				if !polyEqual(old[k], polys[i]) {
					dirty = append(dirty, k)
				}
			}
			h.step(dirty, removed)
		}
	}
}

// TestPatcherBootstrapMatchesNew pins that the bootstrap generation (all
// keys dirty, empty patcher) reproduces New exactly, including ring vertex
// numbering (the two algorithms weld in the same order from a cold start).
func TestPatcherBootstrapMatchesNew(t *testing.T) {
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	pts := randomPts(40, 99, area)
	polys := voronoiPolys(t, area, pts)
	p := NewPatcher(area)
	keys := make([]int, len(polys))
	dirty := make([]int, len(polys))
	for i := range keys {
		keys[i], dirty[i] = i, i
	}
	sub, _, err := p.Patch(keys, polys, dirty, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(area, polys)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("patched bootstrap invalid: %v", err)
	}
	for i := range want.Regions {
		for j, v := range want.Ring(i) {
			if sub.Ring(i)[j] != v {
				t.Fatalf("region %d ring[%d]: patched vert %d, scratch %d", i, j, sub.Ring(i)[j], v)
			}
		}
	}
}
