package region

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"airindex/internal/geom"
)

var unitArea = geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

// twoHalves splits the unit area vertically at x=60 with a jog.
func twoHalves() []geom.Polygon {
	return []geom.Polygon{
		{geom.Pt(0, 0), geom.Pt(60, 0), geom.Pt(50, 50), geom.Pt(60, 100), geom.Pt(0, 100)},
		{geom.Pt(60, 0), geom.Pt(100, 0), geom.Pt(100, 100), geom.Pt(60, 100), geom.Pt(50, 50)},
	}
}

func TestNewTwoRegions(t *testing.T) {
	sub, err := New(unitArea, twoHalves())
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 2 {
		t.Fatalf("N = %d", sub.N())
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if got := sub.Locate(geom.Pt(10, 50)); got != 0 {
		t.Errorf("Locate left = %d", got)
	}
	if got := sub.Locate(geom.Pt(90, 50)); got != 1 {
		t.Errorf("Locate right = %d", got)
	}
	if got := sub.Locate(geom.Pt(101, 50)); got != -1 {
		t.Errorf("Locate outside = %d", got)
	}
}

func TestWeldingMergesNearbyVertices(t *testing.T) {
	polys := twoHalves()
	// Perturb polygon 1's copies of the shared vertices within the weld
	// tolerance (corners stay exact: they have no partner to weld to).
	shared := map[geom.Point]bool{geom.Pt(60, 0): true, geom.Pt(50, 50): true, geom.Pt(60, 100): true}
	for i, p := range polys[1] {
		if shared[p] {
			polys[1][i] = geom.Pt(p.X+0.4e-5, p.Y-0.4e-5)
		}
	}
	sub, err := New(unitArea, polys)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("welded subdivision invalid: %v", err)
	}
	// The shared edge (60,0)-(50,50)-(60,100) must be recognized: region 0's
	// boundary against region 1 is non-empty.
	border := sub.SharedBorder([]int{0}, []int{1})
	if len(border) != 2 {
		t.Fatalf("shared border has %d segments, want 2", len(border))
	}
}

func TestValidateCatchesCoverageGap(t *testing.T) {
	polys := []geom.Polygon{
		{geom.Pt(0, 0), geom.Pt(50, 0), geom.Pt(50, 100), geom.Pt(0, 100)},
		// Gap: second region starts at x=55.
		{geom.Pt(55, 0), geom.Pt(100, 0), geom.Pt(100, 100), geom.Pt(55, 100)},
	}
	sub, err := New(unitArea, polys)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err == nil {
		t.Fatal("Validate should reject a coverage gap")
	} else if !strings.Contains(err.Error(), "cover") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestValidateCatchesDanglingInteriorEdge(t *testing.T) {
	// Two overlapping copies of the left half: the duplicate directed edge
	// must be rejected at construction.
	polys := []geom.Polygon{twoHalves()[0], twoHalves()[0]}
	if _, err := New(unitArea, polys); err == nil {
		t.Fatal("New should reject duplicate directed edges")
	}
}

func TestDegeneratePolygonRejected(t *testing.T) {
	if _, err := New(unitArea, []geom.Polygon{{geom.Pt(0, 0), geom.Pt(1, 1)}}); err == nil {
		t.Fatal("two-vertex polygon should be rejected")
	}
	if _, err := New(unitArea, nil); err == nil {
		t.Fatal("empty polygon list should be rejected")
	}
}

func TestBoundarySegmentsOfUnion(t *testing.T) {
	sub, err := New(unitArea, twoHalves())
	if err != nil {
		t.Fatal(err)
	}
	// Boundary of the union of both = the service-area border (8 segments:
	// each side is split nowhere except the two x=60 touch points on
	// top/bottom edges -> bottom/top split into 2 each).
	segs := sub.BoundarySegments([]int{0, 1})
	var length float64
	for _, s := range segs {
		length += s.Len()
	}
	if math.Abs(length-400) > 1e-9 {
		t.Errorf("union boundary length = %v, want 400", length)
	}
	// Boundary of region 0 alone includes the interior border.
	segs0 := sub.BoundarySegments([]int{0})
	var len0 float64
	for _, s := range segs0 {
		len0 += s.Len()
	}
	want := 60 + 100 + 60 + 2*math.Hypot(10, 50)
	if math.Abs(len0-want) > 1e-9 {
		t.Errorf("region-0 boundary length = %v, want %v", len0, want)
	}
}

func TestNeighborAndEdgeOwner(t *testing.T) {
	sub, err := New(unitArea, twoHalves())
	if err != nil {
		t.Fatal(err)
	}
	interior, boundary := 0, 0
	for _, id := range []int{0, 1} {
		ring := sub.Ring(id)
		for j := range ring {
			u, v := ring[j], ring[(j+1)%len(ring)]
			if sub.EdgeOwner(u, v) != id {
				t.Fatalf("edge owner wrong for region %d", id)
			}
			if nb := sub.Neighbor(u, v); nb >= 0 {
				interior++
				if nb == id {
					t.Fatal("region neighbors itself")
				}
			} else {
				boundary++
			}
		}
	}
	if interior != 4 { // two shared segments, counted from both sides
		t.Errorf("interior edge count = %d, want 4", interior)
	}
	if boundary != 6 {
		t.Errorf("boundary edge count = %d, want 6", boundary)
	}
}

func TestUniqueEdges(t *testing.T) {
	sub, err := New(unitArea, twoHalves())
	if err != nil {
		t.Fatal(err)
	}
	edges := sub.UniqueEdges()
	if len(edges) != 8 { // 6 border + 2 interior
		t.Fatalf("unique edges = %d, want 8", len(edges))
	}
	interior := 0
	for _, e := range edges {
		if !e.A.Less(e.B) {
			t.Fatalf("edge endpoints not ordered: %v %v", e.A, e.B)
		}
		if e.Forward >= 0 && e.Backward >= 0 {
			interior++
		}
		if e.Forward < 0 && e.Backward < 0 {
			t.Fatal("edge owned by nobody")
		}
	}
	if interior != 2 {
		t.Fatalf("interior unique edges = %d, want 2", interior)
	}
}

func TestTJunctionRepair(t *testing.T) {
	// Left column split into two stacked cells; right column one tall cell
	// whose left edge has a T-junction at (50,50).
	polys := []geom.Polygon{
		{geom.Pt(0, 0), geom.Pt(50, 0), geom.Pt(50, 50), geom.Pt(0, 50)},
		{geom.Pt(0, 50), geom.Pt(50, 50), geom.Pt(50, 100), geom.Pt(0, 100)},
		{geom.Pt(50, 0), geom.Pt(100, 0), geom.Pt(100, 100), geom.Pt(50, 100)},
	}
	sub, err := New(unitArea, polys, WithTJunctionRepair())
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("repaired subdivision invalid: %v", err)
	}
	// After repair the tall cell's ring contains the junction vertex, so
	// both stacked cells see it as a neighbor.
	if len(sub.SharedBorder([]int{2}, []int{0})) != 1 {
		t.Error("cell 2 should border cell 0 on exactly one edge")
	}
	if len(sub.SharedBorder([]int{2}, []int{1})) != 1 {
		t.Error("cell 2 should border cell 1 on exactly one edge")
	}
}

func TestLocateRandomAgainstContains(t *testing.T) {
	sub, err := New(unitArea, twoHalves())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 5000; i++ {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		id := sub.Locate(p)
		if id < 0 {
			t.Fatalf("point %v in area not located", p)
		}
		if !sub.Regions[id].Poly.Contains(p) {
			t.Fatalf("located region %d does not contain %v", id, p)
		}
	}
}
