// Package broadcast simulates the paper's wireless data-dissemination
// layer: a flat broadcast cycle organized with the (1, m) interleaving
// technique of Imielinski et al., in which the full index is transmitted
// before every 1/m fraction of the data, and the client access protocol
// (initial probe, selective index search, data retrieval) measured in
// packet slots. Access latency and tuning time — the paper's two primary
// metrics — fall directly out of the simulation.
package broadcast

import (
	"fmt"
	"math"
	"sort"
)

// Schedule is one broadcast cycle: m interleaved copies of an index segment
// of IndexPackets packets, with the N data buckets (BucketPackets packets
// each) split across the m data segments in bucket order.
type Schedule struct {
	IndexPackets  int
	NumBuckets    int
	BucketPackets int
	M             int

	cycleLen    int
	indexStarts []int // packet offset of each index copy within the cycle
	bucketPos   []int // packet offset of each bucket's first packet
}

// NewSchedule lays out a (1, m) broadcast cycle. m is clamped to [1, N] so
// every data segment holds at least one bucket.
func NewSchedule(indexPackets, numBuckets, bucketPackets, m int) (*Schedule, error) {
	if indexPackets < 0 || numBuckets <= 0 || bucketPackets <= 0 {
		return nil, fmt.Errorf("broadcast: invalid schedule (index=%d buckets=%d bucketPackets=%d)",
			indexPackets, numBuckets, bucketPackets)
	}
	if m < 1 {
		m = 1
	}
	if m > numBuckets {
		m = numBuckets
	}
	s := &Schedule{
		IndexPackets:  indexPackets,
		NumBuckets:    numBuckets,
		BucketPackets: bucketPackets,
		M:             m,
		indexStarts:   make([]int, 0, m),
		bucketPos:     make([]int, numBuckets),
	}
	pos := 0
	base, extra := numBuckets/m, numBuckets%m
	bucket := 0
	for j := 0; j < m; j++ {
		s.indexStarts = append(s.indexStarts, pos)
		pos += indexPackets
		chunk := base
		if j < extra {
			chunk++
		}
		for i := 0; i < chunk; i++ {
			s.bucketPos[bucket] = pos
			pos += bucketPackets
			bucket++
		}
	}
	s.cycleLen = pos
	return s, nil
}

// CycleLen returns the cycle length in packets.
func (s *Schedule) CycleLen() int { return s.cycleLen }

// DataPackets returns the number of data packets per cycle (the paper's
// "database size" on air; the optimal no-index latency is half of it).
func (s *Schedule) DataPackets() int { return s.NumBuckets * s.BucketPackets }

// IndexOverheadPackets returns the total index packets per cycle.
func (s *Schedule) IndexOverheadPackets() int { return s.M * s.IndexPackets }

// IndexStartOf returns the cycle offset at which the j-th index copy
// starts (0 <= j < M).
func (s *Schedule) IndexStartOf(j int) int { return s.indexStarts[j] }

// BucketStart returns the cycle offset of bucket b's first packet.
func (s *Schedule) BucketStart(b int) int { return s.bucketPos[b] }

// BucketAt returns which bucket and which of its packets occupies the given
// cycle offset; it panics if the offset falls inside an index copy (callers
// classify index regions via IndexStartOf first).
func (s *Schedule) BucketAt(pos int) (bucket, pkt int) {
	i := sort.SearchInts(s.bucketPos, pos+1) - 1
	if i < 0 || pos >= s.bucketPos[i]+s.BucketPackets {
		panic(fmt.Sprintf("broadcast: offset %d is not inside a data bucket", pos))
	}
	return i, pos - s.bucketPos[i]
}

// NextIndexStart returns the absolute slot of the first index-copy start at
// or after absolute time t (slots from an arbitrary epoch).
func (s *Schedule) NextIndexStart(t float64) int {
	return s.nextOccurrence(s.indexStarts, t)
}

// NextBucketStart returns the absolute slot at which bucket b next starts
// at or after absolute time t. This sits on the Monte Carlo hot path (once
// per simulated query), so it inlines the single-offset case of
// nextOccurrence instead of allocating a one-element slice: for an integer
// offset, "off >= ceil(within-eps)" and "float64(off) >= within-eps" agree,
// so the arithmetic below is exactly nextOccurrence on {off}.
func (s *Schedule) NextBucketStart(b int, t float64) int {
	off := s.bucketPos[b]
	L := float64(s.cycleLen)
	k := math.Floor(t / L)
	within := t - k*L
	if float64(off) >= within-1e-9 {
		return int(k)*s.cycleLen + off
	}
	return (int(k)+1)*s.cycleLen + off
}

// nextOccurrence returns the smallest k*cycleLen + off >= t over all
// offsets (which must be sorted ascending).
func (s *Schedule) nextOccurrence(offsets []int, t float64) int {
	L := float64(s.cycleLen)
	k := math.Floor(t / L)
	within := t - k*L
	i := sort.SearchInts(offsets, int(math.Ceil(within-1e-9)))
	if i < len(offsets) && float64(offsets[i]) >= within-1e-9 {
		return int(k)*s.cycleLen + offsets[i]
	}
	return (int(k)+1)*s.cycleLen + offsets[0]
}

// OptimalM returns the replication factor minimizing expected access
// latency for the (1, m) organization (Imielinski et al.): the probe wait
// grows with Data/m while the broadcast wait grows with m*Index, giving
// m* = sqrt(Data/Index). The result is clamped to at least 1.
func OptimalM(indexPackets, dataPackets int) int {
	if indexPackets <= 0 {
		return 1
	}
	m := int(math.Round(math.Sqrt(float64(dataPackets) / float64(indexPackets))))
	if m < 1 {
		m = 1
	}
	return m
}
