package broadcast

import (
	"math"
	"math/rand"
	"testing"
)

func TestScheduleLayout(t *testing.T) {
	s, err := NewSchedule(10, 9, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.CycleLen() != 3*10+9*2 {
		t.Fatalf("cycle = %d", s.CycleLen())
	}
	if s.DataPackets() != 18 || s.IndexOverheadPackets() != 30 {
		t.Fatalf("data %d index %d", s.DataPackets(), s.IndexOverheadPackets())
	}
	// Index copies at 0, 10+6=16, 32; buckets 3 per segment.
	wantStarts := []int{0, 16, 32}
	for j, want := range wantStarts {
		if got := s.indexStarts[j]; got != want {
			t.Errorf("index start %d = %d, want %d", j, got, want)
		}
	}
	if s.bucketPos[0] != 10 || s.bucketPos[3] != 26 || s.bucketPos[8] != 46 {
		t.Errorf("bucket positions %v", s.bucketPos)
	}
}

func TestScheduleUnevenChunks(t *testing.T) {
	s, err := NewSchedule(5, 10, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 10 buckets over 3 segments: 4, 3, 3.
	if s.CycleLen() != 3*5+10 {
		t.Fatalf("cycle = %d", s.CycleLen())
	}
	if s.bucketPos[4] != 5+4+5 {
		t.Errorf("bucket 4 at %d", s.bucketPos[4])
	}
}

func TestScheduleClampsM(t *testing.T) {
	s, err := NewSchedule(5, 3, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.M != 3 {
		t.Fatalf("m = %d, want clamp to 3", s.M)
	}
	s, err = NewSchedule(5, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.M != 1 {
		t.Fatalf("m = %d, want clamp to 1", s.M)
	}
}

func TestNextOccurrence(t *testing.T) {
	s, _ := NewSchedule(10, 9, 2, 3)
	L := float64(s.CycleLen())
	if got := s.NextIndexStart(0); got != 0 {
		t.Errorf("next at 0 = %d", got)
	}
	if got := s.NextIndexStart(1); got != 16 {
		t.Errorf("next at 1 = %d", got)
	}
	if got := s.NextIndexStart(33); got != s.CycleLen() {
		t.Errorf("next at 33 = %d, want wrap to %d", got, s.CycleLen())
	}
	if got := s.NextIndexStart(L + 17); got != s.CycleLen()+32 {
		t.Errorf("next in second cycle = %d", got)
	}
	if got := s.NextBucketStart(0, 11); got != s.CycleLen()+10 {
		t.Errorf("bucket 0 after its start = %d", got)
	}
}

func TestOptimalM(t *testing.T) {
	if got := OptimalM(0, 100); got != 1 {
		t.Errorf("no index m = %d", got)
	}
	if got := OptimalM(100, 100); got != 1 {
		t.Errorf("equal sizes m = %d", got)
	}
	if got := OptimalM(10, 1000); got != 10 {
		t.Errorf("sqrt m = %d, want 10", got)
	}
	if got := OptimalM(1, 9); got != 3 {
		t.Errorf("m = %d, want 3", got)
	}
}

func TestAccessInvariants(t *testing.T) {
	s, err := NewSchedule(8, 20, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 20000; i++ {
		b := rng.Intn(20)
		trace := SearchTrace{Bucket: b, IndexOffsets: []int{0, 1 + rng.Intn(3), 4 + rng.Intn(4)}}
		tm := rng.Float64() * float64(s.CycleLen())
		c, err := s.Access(tm, trace)
		if err != nil {
			t.Fatal(err)
		}
		if c.Latency < float64(s.BucketPackets) {
			t.Fatalf("latency %v below data read time", c.Latency)
		}
		if c.TuneIndex != len(trace.IndexOffsets) {
			t.Fatalf("tuning %d != offsets %d", c.TuneIndex, len(trace.IndexOffsets))
		}
		if c.TuneProbe != 1 || c.TuneData != s.BucketPackets {
			t.Fatalf("probe/data tuning wrong: %+v", c)
		}
		if c.Latency > float64(3*s.CycleLen()) {
			t.Fatalf("latency %v exceeds three cycles", c.Latency)
		}
		if float64(c.TotalTuning()) > c.Latency+1 {
			t.Fatalf("tuning %d exceeds latency %v", c.TotalTuning(), c.Latency)
		}
	}
}

func TestAccessBackwardOffsetWaitsForNextCopy(t *testing.T) {
	s, err := NewSchedule(10, 10, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Forward trace vs a trace revisiting an earlier offset.
	fwd, err := s.Access(0, SearchTrace{Bucket: 9, IndexOffsets: []int{0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.Access(0, SearchTrace{Bucket: 9, IndexOffsets: []int{0, 5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if back.Latency <= fwd.Latency {
		t.Errorf("backward pointer should cost extra latency: %v vs %v", back.Latency, fwd.Latency)
	}
	if back.TuneIndex != 3 {
		t.Errorf("backward tuning = %d", back.TuneIndex)
	}
}

func TestAccessErrors(t *testing.T) {
	s, _ := NewSchedule(4, 5, 1, 1)
	if _, err := s.Access(0, SearchTrace{Bucket: -1}); err == nil {
		t.Error("negative bucket should fail")
	}
	if _, err := s.Access(0, SearchTrace{Bucket: 5}); err == nil {
		t.Error("bucket out of range should fail")
	}
	if _, err := s.Access(0, SearchTrace{Bucket: 0, IndexOffsets: []int{4}}); err == nil {
		t.Error("offset beyond index segment should fail")
	}
}

func TestNoIndexAccessExpectation(t *testing.T) {
	// Expected no-index latency over random (bucket, time) is about half
	// the data cycle.
	const n, bp = 50, 2
	rng := rand.New(rand.NewSource(16))
	var sum float64
	const q = 200000
	for i := 0; i < q; i++ {
		c := NoIndexAccess(rng.Float64()*float64(n*bp), n, bp, rng.Intn(n))
		sum += c.Latency
		if c.Latency < bp {
			t.Fatalf("latency %v below read time", c.Latency)
		}
		if got := c.TotalTuning(); float64(got) < c.Latency-2 || float64(got) > c.Latency+2 {
			t.Fatalf("no-index tuning %d should track latency %v", got, c.Latency)
		}
	}
	avg := sum / q
	want := float64(n*bp)/2 + bp
	if math.Abs(avg-want)/want > 0.03 {
		t.Errorf("average no-index latency %v, want about %v", avg, want)
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := NewSchedule(-1, 10, 1, 1); err == nil {
		t.Error("negative index size should fail")
	}
	if _, err := NewSchedule(5, 0, 1, 1); err == nil {
		t.Error("zero buckets should fail")
	}
	if _, err := NewSchedule(5, 10, 0, 1); err == nil {
		t.Error("zero bucket packets should fail")
	}
}

// TestAccessMatchesAnalyticModel cross-checks the Monte Carlo simulator
// against the closed-form (1, m) expectation of Imielinski et al.:
// E[latency] ~ probe(1) + (I + D/m)/2  (wait for the next index copy)
//   - (m*I + D)/2             (wait for the data)
//
// plus the bucket read time; the small index-search span is the residual.
func TestAccessMatchesAnalyticModel(t *testing.T) {
	const (
		I  = 20
		n  = 200
		bp = 2
		m  = 4
	)
	s, err := NewSchedule(I, n, bp, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	var lat float64
	const q = 300000
	for i := 0; i < q; i++ {
		trace := SearchTrace{Bucket: rng.Intn(n), IndexOffsets: []int{0, 2, 7}}
		c, err := s.Access(rng.Float64()*float64(s.CycleLen()), trace)
		if err != nil {
			t.Fatal(err)
		}
		lat += c.Latency
	}
	lat /= q
	D := float64(n * bp)
	analytic := 1 + (float64(I)+D/m)/2 + (float64(m*I)+D)/2 + float64(bp)
	if rel := math.Abs(lat-analytic) / analytic; rel > 0.05 {
		t.Errorf("Monte Carlo latency %.1f vs analytic %.1f (rel %.3f)", lat, analytic, rel)
	}
}

// TestOptimalMIsOptimal verifies that the m chosen by OptimalM minimizes
// simulated latency over its neighbors.
func TestOptimalMIsOptimal(t *testing.T) {
	const (
		I  = 10
		n  = 250
		bp = 2
	)
	avgLatency := func(m int) float64 {
		s, err := NewSchedule(I, n, bp, m)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(18))
		var lat float64
		const q = 120000
		for i := 0; i < q; i++ {
			trace := SearchTrace{Bucket: rng.Intn(n), IndexOffsets: []int{0, 3}}
			c, err := s.Access(rng.Float64()*float64(s.CycleLen()), trace)
			if err != nil {
				t.Fatal(err)
			}
			lat += c.Latency
		}
		return lat / q
	}
	best := OptimalM(I, n*bp)
	lbest := avgLatency(best)
	for _, m := range []int{best / 2, best * 2} {
		if m < 1 || m == best {
			continue
		}
		if l := avgLatency(m); l < lbest*0.98 {
			t.Errorf("m=%d latency %.1f beats optimal m=%d latency %.1f", m, l, best, lbest)
		}
	}
}
