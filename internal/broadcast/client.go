package broadcast

import "fmt"

// SearchTrace is the output of one index search over a paged index: the
// packet offsets (within the index segment, in visit order) the client must
// download, and the data bucket the search resolves to.
type SearchTrace struct {
	Bucket       int
	IndexOffsets []int
}

// AccessCost breaks down the cost of one query under the access protocol.
// Latency is measured in packet slots from query issue to the end of the
// last data packet. Tuning splits into the three protocol steps; the paper's
// Figure 12 reports TuneIndex only, since probe and data-retrieval tuning
// are identical across index structures.
type AccessCost struct {
	Latency   float64
	TuneProbe int
	TuneIndex int
	TuneData  int
}

// TotalTuning returns the full tuning time across all protocol steps.
func (c AccessCost) TotalTuning() int { return c.TuneProbe + c.TuneIndex + c.TuneData }

// Access simulates the client access protocol for a query issued at
// absolute time t (in packet slots; any non-negative value, typically
// uniform over one cycle):
//
//  1. Initial probe: finish receiving the packet in flight to learn the
//     offset of the next index copy, then doze.
//  2. Index search: selectively tune in for each packet in the trace. A
//     trace offset earlier than the client's current position within the
//     index copy (possible for DAG-shaped indexes whose paging cannot make
//     every pointer forward) is fetched from the next index copy.
//  3. Data retrieval: doze until the bucket's next occurrence and download
//     all its packets.
func (s *Schedule) Access(t float64, trace SearchTrace) (AccessCost, error) {
	if trace.Bucket < 0 || trace.Bucket >= s.NumBuckets {
		return AccessCost{}, fmt.Errorf("broadcast: bucket %d out of range [0,%d)", trace.Bucket, s.NumBuckets)
	}
	var c AccessCost

	// Initial probe: wait for the in-flight packet to end.
	cur := float64(int(t) + 1)
	c.TuneProbe = 1

	if s.IndexPackets > 0 {
		idxStart := float64(s.NextIndexStart(cur))
		for _, off := range trace.IndexOffsets {
			if off < 0 || off >= s.IndexPackets {
				return AccessCost{}, fmt.Errorf("broadcast: index offset %d out of segment [0,%d)", off, s.IndexPackets)
			}
			target := idxStart + float64(off)
			if target < cur {
				// Already passed in this copy; wait for the next copy.
				idxStart = float64(s.NextIndexStart(cur))
				target = idxStart + float64(off)
			}
			cur = target + 1 // finish receiving the packet
			c.TuneIndex++
		}
	}

	dataStart := float64(s.NextBucketStart(trace.Bucket, cur))
	end := dataStart + float64(s.BucketPackets)
	c.TuneData = s.BucketPackets
	c.Latency = end - t
	return c, nil
}

// NoIndexAccess simulates the paper's non-indexing baseline on a data-only
// cycle: the client tunes in at time t and reads every bucket as it arrives
// until it reaches the target bucket (it cannot predict arrival, so it stays
// active throughout). Latency equals tuning here.
func NoIndexAccess(t float64, numBuckets, bucketPackets, target int) AccessCost {
	cycle := float64(numBuckets * bucketPackets)
	s := float64(target * bucketPackets)
	// Smallest s + k*cycle >= t.
	k := 0.0
	if t > s {
		k = (t - s) / cycle
		k = float64(int(k))
		if s+k*cycle < t {
			k++
		}
	}
	start := s + k*cycle
	end := start + float64(bucketPackets)
	// The client listens continuously from t to end (it cannot predict the
	// target's arrival without an index).
	tuning := int(end - float64(int(t))) // whole packets touched from the in-flight one
	return AccessCost{
		Latency:   end - t,
		TuneProbe: 0,
		TuneIndex: tuning - bucketPackets,
		TuneData:  bucketPackets,
	}
}
