package geom

// Triangle is an oriented triangle; the canonical orientation is
// counter-clockwise.
type Triangle struct {
	A, B, C Point
}

// Contains reports whether p lies inside the triangle or on its boundary.
func (t Triangle) Contains(p Point) bool {
	d1 := OrientSign(t.A, t.B, p)
	d2 := OrientSign(t.B, t.C, p)
	d3 := OrientSign(t.C, t.A, p)
	neg := d1 < 0 || d2 < 0 || d3 < 0
	pos := d1 > 0 || d2 > 0 || d3 > 0
	return !(neg && pos)
}

// Area returns the absolute area of the triangle.
func (t Triangle) Area() float64 {
	a := Orient(t.A, t.B, t.C) / 2
	if a < 0 {
		return -a
	}
	return a
}

// Bounds returns the bounding rectangle of the triangle.
func (t Triangle) Bounds() Rect { return RectFromPoints(t.A, t.B, t.C) }

// Centroid returns the centroid of the triangle.
func (t Triangle) Centroid() Point {
	return Point{(t.A.X + t.B.X + t.C.X) / 3, (t.A.Y + t.B.Y + t.C.Y) / 3}
}

// Vertices returns the three vertices in order.
func (t Triangle) Vertices() [3]Point { return [3]Point{t.A, t.B, t.C} }

// IntersectsTriangle reports whether triangles t and u share any point.
// Used when linking coarse re-triangulation triangles to the finer triangles
// they cover in Kirkpatrick's hierarchy.
func (t Triangle) IntersectsTriangle(u Triangle) bool {
	if !t.Bounds().Intersects(u.Bounds()) {
		return false
	}
	tv, uv := t.Vertices(), u.Vertices()
	for _, p := range tv {
		if u.Contains(p) {
			return true
		}
	}
	for _, p := range uv {
		if t.Contains(p) {
			return true
		}
	}
	for i := 0; i < 3; i++ {
		et := Segment{tv[i], tv[(i+1)%3]}
		for j := 0; j < 3; j++ {
			eu := Segment{uv[j], uv[(j+1)%3]}
			if et.Intersects(eu) {
				return true
			}
		}
	}
	return false
}

// OverlapsInterior reports whether the interiors of t and u intersect in a
// region of positive area, as opposed to merely touching along edges or at
// vertices. Kirkpatrick's hierarchy links a coarse triangle only to the
// finer triangles it properly overlaps.
func (t Triangle) OverlapsInterior(u Triangle) bool {
	if !t.IntersectsTriangle(u) {
		return false
	}
	// The intersection of two convex shapes is convex; sample its centroid by
	// clipping one triangle by the other's edges and measuring the area left.
	poly := Polygon{t.A, t.B, t.C}.EnsureCCW()
	uu := Polygon{u.A, u.B, u.C}.EnsureCCW()
	for i := 0; i < 3; i++ {
		a, b := uu[i], uu[(i+1)%3]
		// Inside of a CCW triangle = left of each directed edge:
		// Orient(a,b,p) >= 0, i.e. (b.Y-a.Y)x - (b.X-a.X)y <= a.X*b.Y - a.Y*b.X.
		h := HalfPlane{A: b.Y - a.Y, B: -(b.X - a.X), C: a.X*b.Y - a.Y*b.X}
		poly = ClipHalfPlane(poly, h)
		if poly == nil {
			return false
		}
	}
	return poly.Area() > 100*Eps
}

// Triangulate decomposes a simple polygon into triangles by ear clipping,
// with a fan-decomposition fast path for convex polygons (every Voronoi cell
// is convex). The result triangles are counter-clockwise and cover the
// polygon exactly. Returns nil for degenerate inputs with fewer than three
// effective vertices.
func Triangulate(pg Polygon) []Triangle {
	pg = pg.Clone().Dedup().EnsureCCW()
	n := len(pg)
	if n < 3 {
		return nil
	}
	if pg.IsConvex() {
		out := make([]Triangle, 0, n-2)
		for i := 1; i+1 < n; i++ {
			t := Triangle{pg[0], pg[i], pg[i+1]}
			if t.Area() > Eps {
				out = append(out, t)
			}
		}
		return out
	}
	// Ear clipping on the index ring.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var out []Triangle
	guard := 0
	for len(idx) > 3 && guard < n*n+16 {
		guard++
		clipped := false
		m := len(idx)
		for i := 0; i < m; i++ {
			ia, ib, ic := idx[(i+m-1)%m], idx[i], idx[(i+1)%m]
			a, b, c := pg[ia], pg[ib], pg[ic]
			if OrientSign(a, b, c) <= 0 {
				continue // reflex or collinear corner; not an ear
			}
			ear := Triangle{a, b, c}
			ok := true
			for _, j := range idx {
				if j == ia || j == ib || j == ic {
					continue
				}
				if ear.Contains(pg[j]) && !onTriangleBoundary(ear, pg[j]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			out = append(out, ear)
			idx = append(idx[:i], idx[i+1:]...)
			clipped = true
			break
		}
		if !clipped {
			// Numerically stuck (e.g. collinear runs); drop the most collinear
			// vertex and continue. This only triggers on degenerate rings.
			worst, worstVal := 0, 1e300
			m := len(idx)
			for i := 0; i < m; i++ {
				a, b, c := pg[idx[(i+m-1)%m]], pg[idx[i]], pg[idx[(i+1)%m]]
				v := Orient(a, b, c)
				if v < 0 {
					v = -v
				}
				if v < worstVal {
					worstVal, worst = v, i
				}
			}
			idx = append(idx[:worst], idx[worst+1:]...)
		}
	}
	if len(idx) == 3 {
		t := Triangle{pg[idx[0]], pg[idx[1]], pg[idx[2]]}
		if t.Area() > Eps {
			out = append(out, t)
		}
	}
	return out
}

func onTriangleBoundary(t Triangle, p Point) bool {
	return Segment{t.A, t.B}.Contains(p) || Segment{t.B, t.C}.Contains(p) || Segment{t.C, t.A}.Contains(p)
}
