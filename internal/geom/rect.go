package geom

import "math"

// Rect is an axis-aligned rectangle. A Rect with MinX > MaxX or MinY > MaxY
// is empty; EmptyRect is the canonical empty rectangle suitable as the seed
// of a union fold.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the canonical empty rectangle.
func EmptyRect() Rect {
	return Rect{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
}

// RectFromPoints returns the smallest rectangle containing all pts.
func RectFromPoints(pts ...Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// W returns the width of the rectangle (0 when empty).
func (r Rect) W() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// H returns the height of the rectangle (0 when empty).
func (r Rect) H() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the area of the rectangle (0 when empty).
func (r Rect) Area() float64 { return r.W() * r.H() }

// Margin returns half the perimeter (width + height), the quantity the
// R*-tree split heuristic minimizes.
func (r Rect) Margin() float64 { return r.W() + r.H() }

// Center returns the center point of the rectangle.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersection returns the rectangle common to r and s (possibly empty).
func (r Rect) Intersection(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX), MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX), MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// OverlapArea returns the area of the intersection of r and s.
func (r Rect) OverlapArea(s Rect) float64 { return r.Intersection(s).Area() }

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX), MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX), MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// ExtendPoint returns the smallest rectangle containing r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return r.Union(Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
}

// Enlargement returns the area increase needed for r to cover s, the
// quantity minimized by R-tree subtree choice.
func (r Rect) Enlargement(s Rect) float64 { return r.Union(s).Area() - r.Area() }

// Corners returns the four corners of the rectangle in counter-clockwise
// order starting from (MinX, MinY).
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY}, {r.MaxX, r.MinY}, {r.MaxX, r.MaxY}, {r.MinX, r.MaxY},
	}
}

// Polygon returns the rectangle as a counter-clockwise polygon.
func (r Rect) Polygon() Polygon {
	c := r.Corners()
	return Polygon{c[0], c[1], c[2], c[3]}
}
