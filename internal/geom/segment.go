package geom

import "math"

// Segment is a closed line segment between two endpoints.
type Segment struct {
	A, B Point
}

// Seg is shorthand for constructing a Segment.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Reverse returns the segment with endpoints swapped.
func (s Segment) Reverse() Segment { return Segment{A: s.B, B: s.A} }

// Len returns the Euclidean length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Mid returns the midpoint of the segment.
func (s Segment) Mid() Point { return Lerp(s.A, s.B, 0.5) }

// Bounds returns the axis-aligned bounding rectangle of the segment.
func (s Segment) Bounds() Rect {
	return Rect{
		MinX: math.Min(s.A.X, s.B.X), MinY: math.Min(s.A.Y, s.B.Y),
		MaxX: math.Max(s.A.X, s.B.X), MaxY: math.Max(s.A.Y, s.B.Y),
	}
}

// Contains reports whether point p lies on the segment within Eps.
func (s Segment) Contains(p Point) bool {
	if OrientSign(s.A, s.B, p) != 0 {
		return false
	}
	b := s.Bounds()
	return p.X >= b.MinX-Eps && p.X <= b.MaxX+Eps && p.Y >= b.MinY-Eps && p.Y <= b.MaxY+Eps
}

// YAt returns the y-coordinate of the (extended) line through the segment at
// the given x. For a vertical segment it returns the y of endpoint A.
func (s Segment) YAt(x float64) float64 {
	dx := s.B.X - s.A.X
	if math.Abs(dx) <= Eps {
		return s.A.Y
	}
	t := (x - s.A.X) / dx
	return s.A.Y + t*(s.B.Y-s.A.Y)
}

// Intersects reports whether segments s and t share at least one point
// (including touching at endpoints or overlapping collinearly).
func (s Segment) Intersects(t Segment) bool {
	d1 := OrientSign(t.A, t.B, s.A)
	d2 := OrientSign(t.A, t.B, s.B)
	d3 := OrientSign(s.A, s.B, t.A)
	d4 := OrientSign(s.A, s.B, t.B)
	if d1*d2 < 0 && d3*d4 < 0 {
		return true
	}
	if d1 == 0 && t.Contains(s.A) {
		return true
	}
	if d2 == 0 && t.Contains(s.B) {
		return true
	}
	if d3 == 0 && s.Contains(t.A) {
		return true
	}
	if d4 == 0 && s.Contains(t.B) {
		return true
	}
	return false
}

// Intersection returns the single intersection point of properly crossing
// segments s and t, and whether such a point exists. Collinear overlaps and
// mere endpoint touches where the lines are parallel report ok = false.
func (s Segment) Intersection(t Segment) (Point, bool) {
	r := s.B.Sub(s.A)
	q := t.B.Sub(t.A)
	denom := r.Cross(q)
	if math.Abs(denom) <= Eps {
		return Point{}, false
	}
	diff := t.A.Sub(s.A)
	u := diff.Cross(q) / denom
	v := diff.Cross(r) / denom
	if u < -Eps || u > 1+Eps || v < -Eps || v > 1+Eps {
		return Point{}, false
	}
	return Lerp(s.A, s.B, u), true
}

// CrossesRightwardRay reports whether a horizontal ray emanating from p to
// the right (+x) crosses the segment, using the standard half-open rule
// (an endpoint exactly at p.Y counts only when it is the lower endpoint),
// so that a ray passing through a shared vertex of two chained segments is
// counted exactly once. Points lying exactly on the segment count as a
// crossing, which callers may special-case if needed.
func (s Segment) CrossesRightwardRay(p Point) bool {
	a, b := s.A, s.B
	if (a.Y > p.Y) == (b.Y > p.Y) {
		return false
	}
	// x-coordinate of the segment at height p.Y.
	x := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
	return x > p.X
}
