package geom

import (
	"math/rand"
	"testing"
)

func TestPolylineBasics(t *testing.T) {
	pl := Polyline{Pt(0, 0), Pt(3, 4), Pt(3, 10)}
	if got := pl.Len(); got != 11 {
		t.Errorf("Len = %v", got)
	}
	if got := len(pl.Segments()); got != 2 {
		t.Errorf("Segments = %d", got)
	}
	if got := len(Polyline{Pt(0, 0)}.Segments()); got != 0 {
		t.Errorf("single point segments = %d", got)
	}
	if b := pl.Bounds(); b.MaxY != 10 || b.MaxX != 3 {
		t.Errorf("Bounds = %+v", b)
	}
}

func TestChainSegmentsSingleChain(t *testing.T) {
	segs := []Segment{
		Seg(Pt(0, 0), Pt(1, 1)),
		Seg(Pt(1, 1), Pt(2, 0)),
		Seg(Pt(2, 0), Pt(3, 2)),
	}
	chains := ChainSegments(segs)
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	if len(chains[0]) != 4 {
		t.Fatalf("chain length = %d, want 4", len(chains[0]))
	}
}

func TestChainSegmentsShuffledAndReversed(t *testing.T) {
	// Shuffled order and arbitrary segment directions must still chain.
	rng := rand.New(rand.NewSource(9))
	var segs []Segment
	for i := 0; i < 20; i++ {
		a := Pt(float64(i), float64(i%3))
		b := Pt(float64(i+1), float64((i+1)%3))
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		segs = append(segs, Seg(a, b))
	}
	rng.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
	chains := ChainSegments(segs)
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	if got := len(chains[0]); got != 21 {
		t.Fatalf("chain length = %d, want 21", got)
	}
}

func TestChainSegmentsMultipleComponents(t *testing.T) {
	segs := []Segment{
		Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(1, 0), Pt(2, 1)),
		Seg(Pt(10, 10), Pt(11, 12)),
	}
	chains := ChainSegments(segs)
	if len(chains) != 2 {
		t.Fatalf("chains = %d, want 2", len(chains))
	}
}

func TestChainSegmentsClosedLoop(t *testing.T) {
	segs := []Segment{
		Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(10, 0), Pt(10, 10)),
		Seg(Pt(10, 10), Pt(0, 10)), Seg(Pt(0, 10), Pt(0, 0)),
	}
	chains := ChainSegments(segs)
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	ch := chains[0]
	if len(ch) != 5 || !ch[0].Eq(ch[len(ch)-1]) {
		t.Fatalf("closed loop should repeat first vertex: %v", ch)
	}
}

func TestChainSegmentsJunctionBreaks(t *testing.T) {
	// A Y-junction: three segments meet at one vertex; every chain must
	// terminate there rather than pass through.
	j := Pt(5, 5)
	segs := []Segment{
		Seg(Pt(0, 0), j), Seg(j, Pt(10, 0)), Seg(j, Pt(5, 10)),
	}
	chains := ChainSegments(segs)
	if len(chains) != 3 {
		t.Fatalf("chains = %d, want 3 (junction must break chains)", len(chains))
	}
	total := 0
	for _, ch := range chains {
		total += len(ch) - 1
	}
	if total != 3 {
		t.Fatalf("chained segments = %d, want 3", total)
	}
}

func TestChainSegmentsPreservesTotalLength(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		var segs []Segment
		var wantLen float64
		n := 2 + rng.Intn(30)
		prev := Pt(rng.Float64()*100, rng.Float64()*100)
		for i := 0; i < n; i++ {
			next := Pt(rng.Float64()*100, rng.Float64()*100)
			segs = append(segs, Seg(prev, next))
			wantLen += prev.Dist(next)
			prev = next
		}
		rng.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
		var got float64
		for _, ch := range ChainSegments(segs) {
			got += ch.Len()
		}
		if diff := got - wantLen; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: chained length %v != %v", trial, got, wantLen)
		}
	}
}
