package geom

// Polygon is a simple polygon stored as its vertex ring without repeating
// the first vertex. The canonical orientation throughout the repository is
// counter-clockwise; use EnsureCCW after external construction.
type Polygon []Point

// SignedArea returns the signed area of the polygon: positive for
// counter-clockwise rings, negative for clockwise.
func (pg Polygon) SignedArea() float64 {
	var s float64
	n := len(pg)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s += pg[i].Cross(pg[j])
	}
	return s / 2
}

// Area returns the absolute area of the polygon.
func (pg Polygon) Area() float64 {
	a := pg.SignedArea()
	if a < 0 {
		return -a
	}
	return a
}

// EnsureCCW returns the polygon in counter-clockwise orientation, reversing
// a clockwise ring in place.
func (pg Polygon) EnsureCCW() Polygon {
	if pg.SignedArea() < 0 {
		for i, j := 0, len(pg)-1; i < j; i, j = i+1, j-1 {
			pg[i], pg[j] = pg[j], pg[i]
		}
	}
	return pg
}

// Clone returns a deep copy of the polygon.
func (pg Polygon) Clone() Polygon {
	out := make(Polygon, len(pg))
	copy(out, pg)
	return out
}

// Bounds returns the axis-aligned bounding rectangle (the MBR used by the
// R*-tree) of the polygon.
func (pg Polygon) Bounds() Rect {
	return RectFromPoints(pg...)
}

// Centroid returns the area centroid of the polygon. For degenerate
// (zero-area) polygons it falls back to the vertex average.
func (pg Polygon) Centroid() Point {
	var cx, cy, a float64
	n := len(pg)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		cr := pg[i].Cross(pg[j])
		cx += (pg[i].X + pg[j].X) * cr
		cy += (pg[i].Y + pg[j].Y) * cr
		a += cr
	}
	if a > -Eps && a < Eps {
		var s Point
		for _, p := range pg {
			s = s.Add(p)
		}
		return s.Scale(1 / float64(n))
	}
	return Point{cx / (3 * a), cy / (3 * a)}
}

// Contains reports whether p lies inside the polygon or on its boundary.
// Interior membership uses even-odd ray crossing with the half-open edge
// rule; boundary points are detected explicitly so that queries landing
// exactly on shared region borders resolve deterministically.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg)
	inside := false
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		e := Segment{pg[i], pg[j]}
		if e.Contains(p) {
			return true
		}
		if e.CrossesRightwardRay(p) {
			inside = !inside
		}
	}
	return inside
}

// ContainsStrict reports whether p lies strictly inside the polygon,
// excluding the boundary.
func (pg Polygon) ContainsStrict(p Point) bool {
	n := len(pg)
	inside := false
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		e := Segment{pg[i], pg[j]}
		if e.Contains(p) {
			return false
		}
		if e.CrossesRightwardRay(p) {
			inside = !inside
		}
	}
	return inside
}

// Edges returns the directed edges of the polygon in ring order.
func (pg Polygon) Edges() []Segment {
	n := len(pg)
	out := make([]Segment, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Segment{pg[i], pg[(i+1)%n]})
	}
	return out
}

// IsConvex reports whether the polygon is convex (allowing collinear runs).
func (pg Polygon) IsConvex() bool {
	n := len(pg)
	if n < 4 {
		return true
	}
	sign := 0
	for i := 0; i < n; i++ {
		s := OrientSign(pg[i], pg[(i+1)%n], pg[(i+2)%n])
		if s == 0 {
			continue
		}
		if sign == 0 {
			sign = s
		} else if s != sign {
			return false
		}
	}
	return true
}

// MinX returns the leftmost x-coordinate of the polygon.
func (pg Polygon) MinX() float64 { return pg.Bounds().MinX }

// MaxX returns the rightmost x-coordinate of the polygon.
func (pg Polygon) MaxX() float64 { return pg.Bounds().MaxX }

// MinY returns the lowest y-coordinate of the polygon.
func (pg Polygon) MinY() float64 { return pg.Bounds().MinY }

// MaxY returns the uppermost y-coordinate of the polygon.
func (pg Polygon) MaxY() float64 { return pg.Bounds().MaxY }

// Dedup returns the polygon with consecutive (near-)duplicate vertices and
// the wrap-around duplicate removed. It is applied after clipping, which can
// produce coincident vertices at half-plane boundaries.
func (pg Polygon) Dedup() Polygon {
	if len(pg) == 0 {
		return pg
	}
	out := pg[:0]
	for _, p := range pg {
		if len(out) == 0 || !out[len(out)-1].Eq(p) {
			out = append(out, p)
		}
	}
	for len(out) > 1 && out[0].Eq(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	return out
}
