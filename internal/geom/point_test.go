package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(3, 4), Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != -3+8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != 3*2-4*(-1) {
		t.Errorf("Cross = %v", got)
	}
	if got := Pt(0, 0).Dist(p); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := Pt(0, 0).Dist2(p); got != 25 {
		t.Errorf("Dist2 = %v", got)
	}
}

func TestPointLess(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Pt(1, 5), Pt(2, 0), true},
		{Pt(2, 0), Pt(1, 5), false},
		{Pt(1, 1), Pt(1, 2), true},
		{Pt(1, 2), Pt(1, 1), false},
		{Pt(1, 1), Pt(1, 1), false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("Less(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOrientBasics(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 0)
	if s := OrientSign(a, b, Pt(5, 1)); s != 1 {
		t.Errorf("left point: sign %d", s)
	}
	if s := OrientSign(a, b, Pt(5, -1)); s != -1 {
		t.Errorf("right point: sign %d", s)
	}
	if s := OrientSign(a, b, Pt(20, 0)); s != 0 {
		t.Errorf("collinear point: sign %d", s)
	}
}

func TestOrientAntisymmetry(t *testing.T) {
	// Bound the coordinate magnitudes: quick's raw float64 generator
	// produces values near ±1e308 that overflow the determinant.
	cfg := &quick.Config{
		MaxCount: 500,
		Rand:     rand.New(rand.NewSource(1)),
		Values: func(vs []reflect.Value, rng *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(rng.Float64()*2e4 - 1e4)
			}
		},
	}
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		return math.Abs(Orient(a, b, c)+Orient(b, a, c)) <= 1e-6*(1+math.Abs(Orient(a, b, c)))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestOrientRotationInvariance(t *testing.T) {
	// The canonical-frame rotation (x,y) -> (-y,x) must preserve
	// orientation signs (the D-tree relies on this).
	rng := rand.New(rand.NewSource(2))
	rot := func(p Point) Point { return Pt(-p.Y, p.X) }
	for i := 0; i < 1000; i++ {
		a := Pt(rng.Float64()*100, rng.Float64()*100)
		b := Pt(rng.Float64()*100, rng.Float64()*100)
		c := Pt(rng.Float64()*100, rng.Float64()*100)
		if OrientSign(a, b, c) != OrientSign(rot(a), rot(b), rot(c)) {
			t.Fatalf("rotation changed orientation of %v %v %v", a, b, c)
		}
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := Lerp(a, b, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestEq(t *testing.T) {
	if !Pt(1, 1).Eq(Pt(1+Eps/2, 1-Eps/2)) {
		t.Error("points within Eps should be equal")
	}
	if Pt(1, 1).Eq(Pt(1+3*Eps, 1)) {
		t.Error("points beyond Eps should differ")
	}
}
