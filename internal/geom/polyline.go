package geom

// Polyline is an open chain of vertices. D-tree partitions are stored as one
// or more polylines; the chain representation lets shared interior vertices
// be counted (and serialized) once rather than per segment.
type Polyline []Point

// Segments returns the consecutive segments of the chain.
func (pl Polyline) Segments() []Segment {
	if len(pl) < 2 {
		return nil
	}
	out := make([]Segment, 0, len(pl)-1)
	for i := 0; i+1 < len(pl); i++ {
		out = append(out, Segment{pl[i], pl[i+1]})
	}
	return out
}

// Bounds returns the bounding rectangle of the chain.
func (pl Polyline) Bounds() Rect { return RectFromPoints(pl...) }

// Len returns the total Euclidean length of the chain.
func (pl Polyline) Len() float64 {
	var s float64
	for i := 0; i+1 < len(pl); i++ {
		s += pl[i].Dist(pl[i+1])
	}
	return s
}

// Clone returns a deep copy of the polyline.
func (pl Polyline) Clone() Polyline {
	out := make(Polyline, len(pl))
	copy(out, pl)
	return out
}

// ChainSegments stitches an unordered set of segments into maximal polylines.
// Segments are joined wherever endpoints coincide (within Eps) and each
// vertex joins exactly two segments; junction vertices of degree > 2 act as
// chain breaks, and closed loops are returned with the first vertex repeated
// at the end. The D-tree partition builder uses this to turn the pruned
// boundary-edge set into the polylines stored in tree nodes.
func ChainSegments(segs []Segment) []Polyline {
	if len(segs) == 0 {
		return nil
	}
	type key struct{ x, y int64 }
	quant := func(p Point) key {
		const q = 1 / (4 * Eps)
		return key{int64(p.X*q + 0.5*signOf(p.X)), int64(p.Y*q + 0.5*signOf(p.Y))}
	}
	// Adjacency from quantized endpoint to incident segment indices.
	adj := make(map[key][]int, len(segs)*2)
	for i, s := range segs {
		adj[quant(s.A)] = append(adj[quant(s.A)], i)
		adj[quant(s.B)] = append(adj[quant(s.B)], i)
	}
	used := make([]bool, len(segs))
	var out []Polyline

	// other returns the far endpoint of segment i as seen from point p.
	other := func(i int, p Point) Point {
		if quant(segs[i].A) == quant(p) {
			return segs[i].B
		}
		return segs[i].A
	}
	// extend walks from point p along unused degree-2 vertices, appending
	// vertices to the chain, and returns the extended chain.
	extend := func(chain Polyline, p Point) Polyline {
		for {
			k := quant(p)
			next := -1
			for _, i := range adj[k] {
				if !used[i] {
					next = i
					break
				}
			}
			if next == -1 || len(adj[k]) != 2 {
				return chain
			}
			used[next] = true
			p = other(next, p)
			chain = append(chain, p)
		}
	}

	// First grow chains from junction/terminal vertices so that maximal
	// chains terminate at natural break points.
	for i, s := range segs {
		if used[i] {
			continue
		}
		da, db := len(adj[quant(s.A)]), len(adj[quant(s.B)])
		if da == 2 && db == 2 {
			continue // interior of a chain or loop; handled below
		}
		start, end := s.A, s.B
		if da == 2 { // grow from the terminal end
			start, end = s.B, s.A
		}
		used[i] = true
		chain := extend(Polyline{start, end}, end)
		out = append(out, chain)
	}
	// Remaining unused segments form closed loops of degree-2 vertices.
	for i, s := range segs {
		if used[i] {
			continue
		}
		used[i] = true
		chain := extend(Polyline{s.A, s.B}, s.B)
		out = append(out, chain)
	}
	return out
}

func signOf(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
