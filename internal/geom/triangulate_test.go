package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestTriangleBasics(t *testing.T) {
	tr := Triangle{Pt(0, 0), Pt(10, 0), Pt(0, 10)}
	if tr.Area() != 50 {
		t.Errorf("Area = %v", tr.Area())
	}
	if !tr.Contains(Pt(1, 1)) || !tr.Contains(Pt(0, 0)) || !tr.Contains(Pt(5, 5)) {
		t.Error("containment")
	}
	if tr.Contains(Pt(6, 6)) {
		t.Error("outside point contained")
	}
	if tr.Centroid() != Pt(10.0/3, 10.0/3) {
		t.Errorf("Centroid = %v", tr.Centroid())
	}
}

func TestTriangleOverlap(t *testing.T) {
	a := Triangle{Pt(0, 0), Pt(10, 0), Pt(0, 10)}
	b := Triangle{Pt(1, 1), Pt(4, 1), Pt(1, 4)}       // inside a
	c := Triangle{Pt(10, 10), Pt(20, 10), Pt(10, 20)} // touches a at nothing
	d := Triangle{Pt(5, 5), Pt(15, 5), Pt(5, 15)}     // edge-adjacent to a's hypotenuse
	if !a.IntersectsTriangle(b) || !a.OverlapsInterior(b) {
		t.Error("nested triangles must overlap")
	}
	if a.IntersectsTriangle(c) {
		t.Error("far triangles must not intersect")
	}
	if !a.IntersectsTriangle(d) {
		t.Error("edge-touching triangles intersect")
	}
	if a.OverlapsInterior(d) {
		t.Error("edge touch is not interior overlap")
	}
}

func TestTriangulateConvex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		pg := randConvex(rng, 3+rng.Intn(9))
		if len(pg) < 3 {
			continue
		}
		tris := Triangulate(pg)
		checkTriangulation(t, pg, tris)
	}
}

func TestTriangulateNonConvex(t *testing.T) {
	shapes := []Polygon{
		// L-shape.
		{Pt(0, 0), Pt(10, 0), Pt(10, 4), Pt(4, 4), Pt(4, 10), Pt(0, 10)},
		// U-shape.
		{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(7, 10), Pt(7, 3), Pt(3, 3), Pt(3, 10), Pt(0, 10)},
		// Spiky star-ish simple polygon.
		{Pt(0, 0), Pt(5, 2), Pt(10, 0), Pt(8, 5), Pt(10, 10), Pt(5, 8), Pt(0, 10), Pt(2, 5)},
		// Ring with collinear run on one edge.
		{Pt(0, 0), Pt(5, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)},
	}
	for i, pg := range shapes {
		tris := Triangulate(pg)
		checkTriangulation(t, pg, tris)
		if t.Failed() {
			t.Fatalf("shape %d failed", i)
		}
	}
}

func TestTriangulateDegenerate(t *testing.T) {
	if Triangulate(Polygon{Pt(0, 0), Pt(1, 1)}) != nil {
		t.Error("two points should not triangulate")
	}
	if tris := Triangulate(Polygon{Pt(0, 0), Pt(1, 1), Pt(2, 2)}); len(tris) != 0 {
		t.Errorf("collinear triangle should vanish, got %v", tris)
	}
}

// checkTriangulation verifies area preservation, coverage of interior
// sample points, and mutual non-overlap.
func checkTriangulation(t *testing.T, pg Polygon, tris []Triangle) {
	t.Helper()
	var sum float64
	for _, tr := range tris {
		sum += tr.Area()
	}
	if math.Abs(sum-pg.Area()) > 1e-6*(1+pg.Area()) {
		t.Errorf("triangle areas %v != polygon area %v for %v", sum, pg.Area(), pg)
		return
	}
	rng := rand.New(rand.NewSource(12))
	b := pg.Bounds()
	for i := 0; i < 300; i++ {
		p := Pt(b.MinX+rng.Float64()*b.W(), b.MinY+rng.Float64()*b.H())
		in := 0
		for _, tr := range tris {
			if tr.Contains(p) {
				in++
			}
		}
		strict := pg.ContainsStrict(p)
		if strict && in == 0 {
			t.Errorf("interior point %v covered by no triangle of %v", p, pg)
			return
		}
		if !pg.Contains(p) && in > 0 {
			t.Errorf("exterior point %v covered by %d triangles", p, in)
			return
		}
	}
}
