package geom

import (
	"math/rand"
	"testing"
)

func TestSegmentBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(4, 3))
	if got := s.Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
	if got := s.Mid(); got != Pt(2, 1.5) {
		t.Errorf("Mid = %v", got)
	}
	if got := s.Reverse(); got.A != s.B || got.B != s.A {
		t.Errorf("Reverse = %v", got)
	}
	b := s.Bounds()
	if b.MinX != 0 || b.MaxX != 4 || b.MinY != 0 || b.MaxY != 3 {
		t.Errorf("Bounds = %+v", b)
	}
}

func TestSegmentContains(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 10))
	if !s.Contains(Pt(5, 5)) {
		t.Error("midpoint should be contained")
	}
	if !s.Contains(Pt(0, 0)) || !s.Contains(Pt(10, 10)) {
		t.Error("endpoints should be contained")
	}
	if s.Contains(Pt(11, 11)) {
		t.Error("collinear point beyond end should not be contained")
	}
	if s.Contains(Pt(5, 6)) {
		t.Error("off-line point should not be contained")
	}
}

func TestSegmentYAt(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 20))
	if got := s.YAt(5); got != 10 {
		t.Errorf("YAt(5) = %v", got)
	}
	v := Seg(Pt(3, 1), Pt(3, 9))
	if got := v.YAt(3); got != 1 {
		t.Errorf("vertical YAt = %v (want endpoint A's y)", got)
	}
}

func TestSegmentsIntersect(t *testing.T) {
	cases := []struct {
		s, u Segment
		want bool
	}{
		{Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(0, 10), Pt(10, 0)), true}, // proper cross
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(10, 0), Pt(20, 5)), true},  // shared endpoint
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 0), Pt(5, 7)), true},    // T-touch
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(0, 1), Pt(10, 1)), false},  // parallel apart
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(6, 0), Pt(9, 0)), false},    // collinear apart
		{Seg(Pt(0, 0), Pt(6, 0)), Seg(Pt(4, 0), Pt(9, 0)), true},     // collinear overlap
		{Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(2, 0), Pt(3, -4)), false},   // disjoint
	}
	for i, c := range cases {
		if got := c.s.Intersects(c.u); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.u.Intersects(c.s); got != c.want {
			t.Errorf("case %d (swapped): Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestSegmentIntersectionPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 10))
	u := Seg(Pt(0, 10), Pt(10, 0))
	p, ok := s.Intersection(u)
	if !ok || !p.Eq(Pt(5, 5)) {
		t.Errorf("Intersection = %v, %v", p, ok)
	}
	if _, ok := s.Intersection(Seg(Pt(0, 1), Pt(10, 11))); ok {
		t.Error("parallel segments should not intersect in a point")
	}
	if _, ok := s.Intersection(Seg(Pt(20, 0), Pt(30, -10))); ok {
		t.Error("crossing outside both ranges should fail")
	}
}

func TestCrossesRightwardRayHalfOpenRule(t *testing.T) {
	// A ray through the shared vertex of a chain must count exactly one
	// crossing across the two segments.
	apex := Pt(5, 5)
	s1 := Seg(Pt(4, 0), apex)
	s2 := Seg(apex, Pt(4, 10))
	p := Pt(0, 5) // ray passes exactly through the apex height
	n := 0
	if s1.CrossesRightwardRay(p) {
		n++
	}
	if s2.CrossesRightwardRay(p) {
		n++
	}
	if n != 1 {
		t.Errorf("apex crossing counted %d times, want 1", n)
	}
	// Horizontal segments can never be crossed.
	if Seg(Pt(1, 5), Pt(9, 5)).CrossesRightwardRay(p) {
		t.Error("horizontal segment crossed")
	}
	// Segments fully left of the point never cross.
	if Seg(Pt(-5, 0), Pt(-5, 10)).CrossesRightwardRay(p) {
		t.Error("segment left of origin crossed")
	}
}

func TestCrossesRightwardRayMatchesPolygonParity(t *testing.T) {
	// For a closed convex ring, parity of crossings must match membership.
	rng := rand.New(rand.NewSource(3))
	ring := Polygon{Pt(2, 2), Pt(8, 1), Pt(9, 7), Pt(5, 9), Pt(1, 6)}
	for i := 0; i < 2000; i++ {
		p := Pt(rng.Float64()*10, rng.Float64()*10)
		n := 0
		for _, e := range ring.Edges() {
			if e.CrossesRightwardRay(p) {
				n++
			}
		}
		inside := ring.ContainsStrict(p)
		if inside != (n%2 == 1) {
			t.Fatalf("point %v: parity %d vs strict containment %v", p, n, inside)
		}
	}
}
