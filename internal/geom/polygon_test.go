package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randConvex returns a random convex polygon (points on a perturbed circle).
func randConvex(rng *rand.Rand, n int) Polygon {
	cx, cy := 20+rng.Float64()*60, 20+rng.Float64()*60
	r := 5 + rng.Float64()*15
	pg := make(Polygon, 0, n)
	angle := 0.0
	for i := 0; i < n; i++ {
		angle += (2 * math.Pi / float64(n)) * (0.5 + rng.Float64())
		rad := r * (0.7 + 0.3*rng.Float64())
		pg = append(pg, Pt(cx+rad*math.Cos(angle), cy+rad*math.Sin(angle)))
	}
	// Sort by angle to guarantee a simple star-shaped (here convex-ish) ring.
	return convexHull(pg)
}

// convexHull computes the hull with the monotone-chain algorithm (test-only
// reference construction).
func convexHull(pts []Point) Polygon {
	if len(pts) < 3 {
		return Polygon(pts)
	}
	sorted := append([]Point(nil), pts...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].Less(sorted[i]) {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	var lower, upper []Point
	for _, p := range sorted {
		for len(lower) >= 2 && Orient(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(sorted) - 1; i >= 0; i-- {
		p := sorted[i]
		for len(upper) >= 2 && Orient(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	return Polygon(append(lower[:len(lower)-1], upper[:len(upper)-1]...))
}

func TestPolygonAreaOrientation(t *testing.T) {
	sq := Polygon{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}
	if sq.SignedArea() != 100 {
		t.Errorf("ccw signed area = %v", sq.SignedArea())
	}
	cw := Polygon{Pt(0, 0), Pt(0, 10), Pt(10, 10), Pt(10, 0)}
	if cw.SignedArea() != -100 {
		t.Errorf("cw signed area = %v", cw.SignedArea())
	}
	fixed := cw.Clone().EnsureCCW()
	if fixed.SignedArea() != 100 {
		t.Errorf("EnsureCCW signed area = %v", fixed.SignedArea())
	}
	if cw.Area() != 100 {
		t.Errorf("abs area = %v", cw.Area())
	}
}

func TestPolygonContains(t *testing.T) {
	pg := Polygon{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}
	if !pg.Contains(Pt(5, 5)) {
		t.Error("interior")
	}
	if !pg.Contains(Pt(0, 5)) || !pg.Contains(Pt(10, 10)) {
		t.Error("boundary should be contained")
	}
	if pg.ContainsStrict(Pt(0, 5)) {
		t.Error("boundary should not be strictly contained")
	}
	if pg.Contains(Pt(-1, 5)) || pg.Contains(Pt(5, 11)) {
		t.Error("exterior")
	}
}

func TestPolygonContainsNonConvex(t *testing.T) {
	// A U-shape: the notch must be outside.
	u := Polygon{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(7, 10), Pt(7, 3), Pt(3, 3), Pt(3, 10), Pt(0, 10)}
	if u.Contains(Pt(5, 7)) {
		t.Error("notch interior should be outside")
	}
	if !u.Contains(Pt(1, 9)) || !u.Contains(Pt(9, 9)) || !u.Contains(Pt(5, 1)) {
		t.Error("arms and base should be inside")
	}
}

func TestPolygonCentroidInsideConvex(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		pg := randConvex(rng, 3+rng.Intn(8))
		if len(pg) < 3 {
			continue
		}
		if !pg.Contains(pg.Centroid()) {
			t.Fatalf("centroid %v outside convex polygon %v", pg.Centroid(), pg)
		}
		if !pg.IsConvex() {
			t.Fatalf("hull not convex: %v", pg)
		}
	}
}

func TestPolygonDedup(t *testing.T) {
	pg := Polygon{Pt(0, 0), Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(10, 10), Pt(0, 10), Pt(0, 0)}
	d := pg.Dedup()
	if len(d) != 4 {
		t.Errorf("dedup left %d vertices: %v", len(d), d)
	}
}

func TestPolygonEdgesClose(t *testing.T) {
	pg := Polygon{Pt(0, 0), Pt(10, 0), Pt(5, 8)}
	es := pg.Edges()
	if len(es) != 3 {
		t.Fatalf("edges = %d", len(es))
	}
	if es[2].B != pg[0] {
		t.Error("last edge should close the ring")
	}
}

func TestPolygonBoundsCentroidAgainstMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pg := randConvex(rng, 8)
	b := pg.Bounds()
	// Monte Carlo area estimate.
	in := 0
	const n = 200000
	for i := 0; i < n; i++ {
		p := Pt(b.MinX+rng.Float64()*b.W(), b.MinY+rng.Float64()*b.H())
		if pg.Contains(p) {
			in++
		}
	}
	est := b.Area() * float64(in) / n
	if rel := math.Abs(est-pg.Area()) / pg.Area(); rel > 0.05 {
		t.Errorf("Monte Carlo area %v vs shoelace %v (rel %v)", est, pg.Area(), rel)
	}
}
