package geom

// HalfPlane describes the set of points satisfying A*x + B*y <= C.
type HalfPlane struct {
	A, B, C float64
}

// Side returns the signed value A*x + B*y - C; non-positive values are
// inside the half-plane.
func (h HalfPlane) Side(p Point) float64 { return h.A*p.X + h.B*p.Y - h.C }

// Contains reports whether p satisfies the half-plane inequality within Eps.
func (h HalfPlane) Contains(p Point) bool { return h.Side(p) <= Eps }

// Bisector returns the half-plane of points at least as close to a as to b,
// i.e. the Voronoi dominance region of site a over site b.
func Bisector(a, b Point) HalfPlane {
	// |p-a|^2 <= |p-b|^2  <=>  2(b-a)·p <= |b|^2 - |a|^2.
	return HalfPlane{
		A: 2 * (b.X - a.X),
		B: 2 * (b.Y - a.Y),
		C: b.X*b.X + b.Y*b.Y - a.X*a.X - a.Y*a.Y,
	}
}

// ClipHalfPlane returns the part of the polygon inside the half-plane using
// the Sutherland–Hodgman algorithm. The input must be convex for the output
// to be a single simple polygon; Voronoi cell construction only ever clips
// convex polygons. A nil result means the polygon lies entirely outside.
func ClipHalfPlane(pg Polygon, h HalfPlane) Polygon {
	if len(pg) == 0 {
		return nil
	}
	out := make(Polygon, 0, len(pg)+1)
	n := len(pg)
	for i := 0; i < n; i++ {
		cur, nxt := pg[i], pg[(i+1)%n]
		curIn, nxtIn := h.Side(cur) <= Eps, h.Side(nxt) <= Eps
		if curIn {
			out = append(out, cur)
		}
		if curIn != nxtIn {
			// Edge crosses the boundary line; add the crossing point.
			dc, dn := h.Side(cur), h.Side(nxt)
			t := dc / (dc - dn)
			out = append(out, Lerp(cur, nxt, t))
		}
	}
	out = out.Dedup()
	if len(out) < 3 {
		return nil
	}
	return out
}

// ClipRect clips the polygon (convex or not; non-convex inputs may yield a
// ring that traces multiple lobes connected by zero-width bridges, which is
// still adequate for area computation) to an axis-aligned rectangle.
func ClipRect(pg Polygon, r Rect) Polygon {
	planes := [4]HalfPlane{
		{A: -1, B: 0, C: -r.MinX}, // x >= MinX
		{A: 1, B: 0, C: r.MaxX},   // x <= MaxX
		{A: 0, B: -1, C: -r.MinY}, // y >= MinY
		{A: 0, B: 1, C: r.MaxY},   // y <= MaxY
	}
	out := pg
	for _, h := range planes {
		out = ClipHalfPlane(out, h)
		if out == nil {
			return nil
		}
	}
	return out
}

// ClipAreaVerticalBand returns the area of the polygon between the vertical
// lines x = lo and x = hi. It is used to compute the D-tree inter-prob
// tie-break (the probability mass of the interlocking strip of a partition).
func ClipAreaVerticalBand(pg Polygon, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	clipped := ClipHalfPlane(pg, HalfPlane{A: -1, B: 0, C: -lo}) // x >= lo
	if clipped == nil {
		return 0
	}
	clipped = ClipHalfPlane(clipped, HalfPlane{A: 1, B: 0, C: hi}) // x <= hi
	if clipped == nil {
		return 0
	}
	return clipped.Area()
}
