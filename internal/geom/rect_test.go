package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randRect(rng *rand.Rand) Rect {
	x1, x2 := rng.Float64()*100, rng.Float64()*100
	y1, y2 := rng.Float64()*100, rng.Float64()*100
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

func TestRectBasics(t *testing.T) {
	r := Rect{MinX: 1, MinY: 2, MaxX: 4, MaxY: 6}
	if r.W() != 3 || r.H() != 4 || r.Area() != 12 || r.Margin() != 7 {
		t.Errorf("dims wrong: %v %v %v %v", r.W(), r.H(), r.Area(), r.Margin())
	}
	if r.Center() != Pt(2.5, 4) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(Pt(1, 2)) || !r.Contains(Pt(4, 6)) || r.Contains(Pt(4.01, 6)) {
		t.Error("Contains boundary semantics wrong")
	}
	if EmptyRect().Area() != 0 || !EmptyRect().IsEmpty() {
		t.Error("EmptyRect should be empty")
	}
}

func TestRectUnionIntersectionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		a, b := randRect(rng), randRect(rng)
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			t.Fatalf("union %v does not contain %v and %v", u, a, b)
		}
		inter := a.Intersection(b)
		if a.Intersects(b) != !inter.IsEmpty() {
			t.Fatalf("Intersects inconsistent with Intersection for %v %v", a, b)
		}
		if !inter.IsEmpty() && (!a.ContainsRect(inter) || !b.ContainsRect(inter)) {
			t.Fatalf("intersection not contained in operands")
		}
		if got, want := a.OverlapArea(b), b.OverlapArea(a); got != want {
			t.Fatalf("overlap not symmetric: %v vs %v", got, want)
		}
		if a.Enlargement(b) < -1e-9 {
			t.Fatalf("enlargement negative for %v %v", a, b)
		}
	}
}

func TestRectFromPointsAndCorners(t *testing.T) {
	f := func(xs [6]float64) bool {
		pts := []Point{Pt(xs[0], xs[1]), Pt(xs[2], xs[3]), Pt(xs[4], xs[5])}
		r := RectFromPoints(pts...)
		for _, p := range pts {
			if !r.Contains(p) {
				return false
			}
		}
		for _, c := range r.Corners() {
			if !r.Contains(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func TestRectPolygonRoundTrip(t *testing.T) {
	r := Rect{MinX: 1, MinY: 2, MaxX: 4, MaxY: 6}
	pg := r.Polygon()
	if pg.SignedArea() <= 0 {
		t.Error("rect polygon should be CCW")
	}
	if pg.Area() != r.Area() {
		t.Errorf("areas differ: %v vs %v", pg.Area(), r.Area())
	}
	if pg.Bounds() != r {
		t.Errorf("bounds differ: %v vs %v", pg.Bounds(), r)
	}
}

func TestEmptyRectAlgebra(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}
	e := EmptyRect()
	if r.Union(e) != r || e.Union(r) != r {
		t.Error("union with empty should be identity")
	}
	if !r.ContainsRect(e) {
		t.Error("anything contains the empty rect")
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Error("empty rect intersects nothing")
	}
}
