package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestBisectorHalfPlane(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 0)
	h := Bisector(a, b)
	if !h.Contains(Pt(2, 3)) {
		t.Error("point nearer a should be in a's dominance region")
	}
	if h.Contains(Pt(8, -1)) {
		t.Error("point nearer b should not be in a's dominance region")
	}
	if !h.Contains(Pt(5, 100)) {
		t.Error("equidistant point should be included (closed half-plane)")
	}
}

func TestClipHalfPlaneSquare(t *testing.T) {
	sq := Polygon{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}
	// Keep x <= 4.
	got := ClipHalfPlane(sq, HalfPlane{A: 1, B: 0, C: 4})
	if math.Abs(got.Area()-40) > 1e-9 {
		t.Errorf("clipped area = %v, want 40", got.Area())
	}
	// Fully inside.
	if got := ClipHalfPlane(sq, HalfPlane{A: 1, B: 0, C: 100}); math.Abs(got.Area()-100) > 1e-9 {
		t.Errorf("full keep area = %v", got.Area())
	}
	// Fully outside.
	if got := ClipHalfPlane(sq, HalfPlane{A: 1, B: 0, C: -1}); got != nil {
		t.Errorf("fully clipped should be nil, got %v", got)
	}
}

func TestClipHalfPlaneAreaAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		pg := randConvex(rng, 3+rng.Intn(7))
		if len(pg) < 3 {
			continue
		}
		// A random line: the two half-plane areas must sum to the polygon's.
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		if a == 0 && b == 0 {
			continue
		}
		c := rng.Float64()*200 - 50
		left := ClipHalfPlane(pg, HalfPlane{A: a, B: b, C: c})
		right := ClipHalfPlane(pg, HalfPlane{A: -a, B: -b, C: -c})
		var sum float64
		if left != nil {
			sum += left.Area()
		}
		if right != nil {
			sum += right.Area()
		}
		if math.Abs(sum-pg.Area()) > 1e-6*(1+pg.Area()) {
			t.Fatalf("areas %v + split %v: sum %v != %v", pg, []float64{a, b, c}, sum, pg.Area())
		}
	}
}

func TestClipRect(t *testing.T) {
	pg := Polygon{Pt(-5, -5), Pt(15, -5), Pt(15, 15), Pt(-5, 15)}
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	got := ClipRect(pg, r)
	if math.Abs(got.Area()-100) > 1e-9 {
		t.Errorf("clip to rect area = %v", got.Area())
	}
	if ClipRect(Polygon{Pt(20, 20), Pt(30, 20), Pt(25, 30)}, r) != nil {
		t.Error("disjoint polygon should clip to nil")
	}
}

func TestClipAreaVerticalBand(t *testing.T) {
	sq := Polygon{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}
	if got := ClipAreaVerticalBand(sq, 2, 5); math.Abs(got-30) > 1e-9 {
		t.Errorf("band area = %v, want 30", got)
	}
	if got := ClipAreaVerticalBand(sq, 5, 5); got != 0 {
		t.Errorf("empty band = %v", got)
	}
	if got := ClipAreaVerticalBand(sq, 8, 2); got != 0 {
		t.Errorf("inverted band = %v", got)
	}
	if got := ClipAreaVerticalBand(sq, -5, 15); math.Abs(got-100) > 1e-9 {
		t.Errorf("full band = %v", got)
	}
}
