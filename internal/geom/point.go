// Package geom provides the planar computational-geometry primitives used by
// every index structure in this repository: points, segments, rectangles,
// polygons and polylines, together with the predicates (orientation, ray
// crossing, containment) and constructions (clipping, triangulation) the
// D-tree, trian-tree, trap-tree and R*-tree are built from.
//
// All coordinates are float64 in memory. Predicates use a small absolute
// epsilon (Eps) appropriate for the coordinate magnitudes used throughout the
// repository (service areas on the order of 10^4 units).
package geom

import "math"

// Eps is the absolute tolerance used by geometric predicates.
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q, component-wise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q, component-wise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the 2D cross product (z-component) of p and q as vectors.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Eq reports whether p and q coincide within Eps in both coordinates.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Less orders points lexicographically by (X, Y). It is the comparison used
// to simulate the sheared coordinate system in the trapezoidal map, where no
// two distinct endpoints may share an x-coordinate.
func (p Point) Less(q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// Orient returns twice the signed area of triangle (a, b, c): positive when
// c lies to the left of the directed line a->b (counter-clockwise turn),
// negative when to the right, and near zero when collinear.
func Orient(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// OrientSign classifies Orient(a, b, c) into -1, 0, +1 using Eps scaled by
// the magnitude of the operands, so that long nearly-collinear edges are
// still recognized as collinear.
func OrientSign(a, b, c Point) int {
	v := Orient(a, b, c)
	scale := math.Abs(b.X-a.X) + math.Abs(b.Y-a.Y) + math.Abs(c.X-a.X) + math.Abs(c.Y-a.Y)
	tol := Eps * (1 + scale)
	switch {
	case v > tol:
		return 1
	case v < -tol:
		return -1
	default:
		return 0
	}
}

// Lerp returns the point a + t*(b-a).
func Lerp(a, b Point, t float64) Point {
	return Point{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)}
}
