package airindex

// Benchmark harness regenerating the paper's evaluation (Figures 10-13 over
// the UNIFORM, HOSPITAL and PARK datasets) plus micro-benchmarks for every
// index structure. Each figure benchmark prints its series once — the same
// rows cmd/airbench reports — and times the per-query client simulation;
// run with:
//
//	go test -bench=. -benchmem
//
// The full-resolution sweep (1M queries, as in the paper) is available via
// cmd/airbench -queries 1000000.

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"

	"airindex/internal/broadcast"
	"airindex/internal/core"
	"airindex/internal/dataset"
	"airindex/internal/distidx"
	"airindex/internal/experiment"
	"airindex/internal/geom"
	"airindex/internal/rstar"
	"airindex/internal/stream"
	"airindex/internal/traptree"
	"airindex/internal/triantree"
	"airindex/internal/wire"
)

// benchQueries is the Monte Carlo resolution used when a figure benchmark
// prints its series (the paper uses 1,000,000; the curves are stable well
// below this).
const benchQueries = 20000

var (
	builtMu    sync.Mutex
	builtCache = map[string]*experiment.Built{}
	msCache    = map[string][]experiment.Measurement{}
	printed    = map[string]bool{}
)

func getBuilt(b *testing.B, ds dataset.Dataset) *experiment.Built {
	b.Helper()
	builtMu.Lock()
	defer builtMu.Unlock()
	if bl, ok := builtCache[ds.Name]; ok {
		return bl
	}
	bl, err := experiment.Build(ds, 42)
	if err != nil {
		b.Fatal(err)
	}
	builtCache[ds.Name] = bl
	return bl
}

func getMeasurements(b *testing.B, ds dataset.Dataset) []experiment.Measurement {
	b.Helper()
	bl := getBuilt(b, ds)
	builtMu.Lock()
	defer builtMu.Unlock()
	if ms, ok := msCache[ds.Name]; ok {
		return ms
	}
	ms, err := experiment.Run(bl, experiment.Config{Queries: benchQueries, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	msCache[ds.Name] = ms
	return ms
}

func printOnce(key, table string) {
	builtMu.Lock()
	defer builtMu.Unlock()
	if printed[key] {
		return
	}
	printed[key] = true
	fmt.Printf("\n%s\n", table)
}

// paperDatasets returns the three evaluation datasets, constructed once.
var paperDatasets = dataset.Paper()

// benchFigure prints one figure's series for a dataset and then times the
// end-to-end client query path (index search + access simulation) on the
// D-tree at 512 B, so the reported ns/op tracks the simulation kernel.
func benchFigure(b *testing.B, ds dataset.Dataset, metric experiment.Metric) {
	ms := getMeasurements(b, ds)
	printOnce(metric.Name+ds.Name, fmt.Sprintf("=== Figure %s ===\n%s",
		metric.Name[3:], experiment.Table(ms, ds.Name, metric)))

	bl := getBuilt(b, ds)
	paged, err := bl.DTree.Page(wire.DTreeParams(512))
	if err != nil {
		b.Fatal(err)
	}
	sched, err := broadcast.NewSchedule(paged.IndexPackets(), bl.Sub.N(), 2, 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	area := bl.Sub.Area
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
		id, trace := paged.Locate(p)
		if _, err := sched.Access(rng.Float64()*float64(sched.CycleLen()),
			broadcast.SearchTrace{Bucket: id, IndexOffsets: trace}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10AccessLatency(b *testing.B) {
	for _, ds := range paperDatasets {
		b.Run(ds.Name, func(b *testing.B) { benchFigure(b, ds, experiment.MetricNormLatency) })
	}
}

func BenchmarkFig11IndexSize(b *testing.B) {
	for _, ds := range paperDatasets {
		b.Run(ds.Name, func(b *testing.B) { benchFigure(b, ds, experiment.MetricNormIndexSize) })
	}
}

func BenchmarkFig12TuningTime(b *testing.B) {
	for _, ds := range paperDatasets {
		b.Run(ds.Name, func(b *testing.B) { benchFigure(b, ds, experiment.MetricTuneIndex) })
	}
}

func BenchmarkFig13IndexingEfficiency(b *testing.B) {
	for _, ds := range paperDatasets {
		b.Run(ds.Name, func(b *testing.B) { benchFigure(b, ds, experiment.MetricEfficiency) })
	}
}

func BenchmarkAblationDTree(b *testing.B) {
	ds := paperDatasets[0]
	builtMu.Lock()
	done := printed["ablation"]
	printed["ablation"] = true
	builtMu.Unlock()
	if !done {
		ms, err := experiment.RunAblation(ds, experiment.Config{
			Capacities: []int{64, 256, 1024}, Queries: benchQueries / 2, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n=== D-tree ablations (%s) ===\n%s\n", ds.Name,
			experiment.Table(ms, ds.Name, experiment.MetricTuneIndex))
	}
	// Time the ablation-relevant kernel: full D-tree build.
	sub := getBuilt(b, ds).Sub
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(sub); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks -------------------------------------------------

func BenchmarkBuildVoronoi1000(b *testing.B) {
	ds := dataset.Uniform(1000, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Subdivision(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildDTree(b *testing.B) {
	for _, ds := range paperDatasets {
		b.Run(ds.Name, func(b *testing.B) {
			sub := getBuilt(b, ds).Sub
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(sub); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBuildTrianTree(b *testing.B) {
	sub := getBuilt(b, paperDatasets[0]).Sub
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := triantree.Build(sub); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildTrapTree(b *testing.B) {
	sub := getBuilt(b, paperDatasets[0]).Sub
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := traptree.Build(sub, rand.New(rand.NewSource(1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildRStarAir(b *testing.B) {
	sub := getBuilt(b, paperDatasets[0]).Sub
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rstar.BuildAir(sub, wire.RStarParams(512)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLocate times raw point location (no broadcast simulation) for one
// index over the UNIFORM dataset at 512 B packets.
func benchLocate(b *testing.B, locate func(geom.Point) (int, []int)) {
	area := dataset.Area
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 1024)
	for i := range pts {
		pts[i] = geom.Pt(area.MinX+rng.Float64()*area.W(), area.MinY+rng.Float64()*area.H())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if id, _ := locate(pts[i&1023]); id < 0 {
			b.Fatal("unresolved query")
		}
	}
}

func BenchmarkLocate(b *testing.B) {
	bl := getBuilt(b, paperDatasets[0])
	idxs, err := bl.Indexes(512)
	if err != nil {
		b.Fatal(err)
	}
	for _, idx := range idxs {
		b.Run(idx.Name(), func(b *testing.B) { benchLocate(b, idx.Locate) })
	}
}

func BenchmarkDTreeBinaryLocate(b *testing.B) {
	bl := getBuilt(b, paperDatasets[0])
	benchLocate(b, func(p geom.Point) (int, []int) { return bl.DTree.Locate(p), nil })
}

func BenchmarkDTreePaging(b *testing.B) {
	tree := getBuilt(b, paperDatasets[0]).DTree
	for _, capacity := range []int{64, 512, 2048} {
		b.Run(fmt.Sprintf("capacity%d", capacity), func(b *testing.B) {
			params := wire.DTreeParams(capacity)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tree.Page(params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDTreeEncodePackets(b *testing.B) {
	tree := getBuilt(b, paperDatasets[0]).DTree
	paged, err := tree.Page(wire.DTreeParams(512))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paged.EncodePackets(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTreeClientLocate(b *testing.B) {
	tree := getBuilt(b, paperDatasets[0]).DTree
	paged, err := tree.Page(wire.DTreeParams(512))
	if err != nil {
		b.Fatal(err)
	}
	packets, err := paged.EncodePackets()
	if err != nil {
		b.Fatal(err)
	}
	benchLocate(b, func(p geom.Point) (int, []int) {
		id, trace, err := core.ClientLocate(packets, 512, p)
		if err != nil {
			b.Fatal(err)
		}
		return id, trace
	})
}

func BenchmarkFacadeAccess(b *testing.B) {
	sys, err := New(dataset.Uniform(200, 9).Sites, Config{PacketCapacity: 512})
	if err != nil {
		b.Fatal(err)
	}
	st := sys.Stats()
	rng := rand.New(rand.NewSource(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := Pt(rng.Float64()*10000, rng.Float64()*10000)
		if _, err := sys.Access(p, rng.Float64()*float64(st.CyclePackets)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSkewedAccessWeightedDTree(b *testing.B) {
	ds := paperDatasets[1] // HOSPITAL
	builtMu.Lock()
	done := printed["skew"]
	printed["skew"] = true
	builtMu.Unlock()
	if !done {
		ms, err := experiment.RunSkewed(ds, experiment.Config{
			Capacities: []int{128, 512, 2048}, Queries: benchQueries / 2, Seed: 42,
		}, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n=== Extension: skewed access ===\n%s\n", experiment.RenderSkew(ms, ds.Name, 1.0))
	}
	sub := getBuilt(b, ds).Sub
	weights := experiment.ZipfWeights(sub.N(), 1.0, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(sub, core.WithAccessWeights(weights)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClientCachePinning(b *testing.B) {
	ds := paperDatasets[1]
	builtMu.Lock()
	done := printed["cache"]
	printed["cache"] = true
	builtMu.Unlock()
	if !done {
		rs, err := experiment.RunCached(ds, 256, []int{0, 1, 2, 4, 8, 16}, experiment.Config{
			Queries: benchQueries / 2, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n=== Extension: client cache ===\n%s\n", experiment.CacheTable(rs))
	}
	paged, err := getBuilt(b, ds).DTree.Page(wire.DTreeParams(256))
	if err != nil {
		b.Fatal(err)
	}
	benchLocate(b, paged.Locate)
}

func BenchmarkDTreeWindowQuery(b *testing.B) {
	tree := getBuilt(b, paperDatasets[0]).DTree
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := rng.Float64()*9000, rng.Float64()*9000
		w := geom.Rect{MinX: x, MinY: y, MaxX: x + 1000, MaxY: y + 1000}
		if got := tree.SearchRect(w); len(got) == 0 {
			b.Fatal("window query found nothing")
		}
	}
}

func BenchmarkStreamedQueryTCP(b *testing.B) {
	sub := getBuilt(b, paperDatasets[1]).Sub
	prog, err := stream.NewDTreeProgram(sub, 256, 0)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := stream.NewServer(ln, prog)
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck
	defer srv.Close()
	client, err := stream.Dial(ln.Addr().String(), 256)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	rng := rand.New(rand.NewSource(12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		if _, err := client.Query(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedIndexing(b *testing.B) {
	ds := paperDatasets[0]
	builtMu.Lock()
	done := printed["dist"]
	printed["dist"] = true
	builtMu.Unlock()
	if !done {
		ms, err := experiment.RunDistributed(ds, experiment.Config{
			Capacities: []int{128, 512, 2048}, Queries: benchQueries / 2, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n=== Extension: (1,m) vs distributed indexing ===\n%s\n%s\n",
			experiment.Table(ms, ds.Name, experiment.MetricNormLatency),
			experiment.Table(ms, ds.Name, experiment.MetricTuneIndex))
	}
	tree := getBuilt(b, ds).DTree
	idx, err := distidx.New(tree, wire.DTreeParams(512))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
		if _, err := idx.Access(p, rng.Float64()*float64(idx.CycleLen())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTreeMarshal(b *testing.B) {
	tree := getBuilt(b, paperDatasets[0]).DTree
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTreeUnmarshal(b *testing.B) {
	tree := getBuilt(b, paperDatasets[0]).DTree
	data, err := tree.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Unmarshal(data, tree.Sub); err != nil {
			b.Fatal(err)
		}
	}
}
