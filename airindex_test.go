package airindex

import (
	"math/rand"
	"testing"
)

func testSites(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	sites := make([]Point, n)
	for i := range sites {
		sites[i] = Pt(rng.Float64()*10000, rng.Float64()*10000)
	}
	return sites
}

func TestNewDefaults(t *testing.T) {
	sys, err := New(testSites(40, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Index != DTree || st.PacketCapacity != 512 || st.DataInstanceSize != 1024 {
		t.Errorf("defaults wrong: %+v", st)
	}
	if st.N != 40 || sys.N() != 40 {
		t.Errorf("N = %d", st.N)
	}
	if st.CyclePackets != st.M*st.IndexPackets+st.DataPackets {
		t.Errorf("cycle arithmetic off: %+v", st)
	}
	if st.BucketPackets != 2 {
		t.Errorf("bucket packets = %d", st.BucketPackets)
	}
}

func TestAllIndexKindsAnswerConsistently(t *testing.T) {
	sites := testSites(80, 2)
	systems := map[IndexKind]*System{}
	for _, kind := range []IndexKind{DTree, TrianTree, TrapTree, RStarTree} {
		sys, err := New(sites, Config{Index: kind, PacketCapacity: 256})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		systems[kind] = sys
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		p := Pt(rng.Float64()*10000, rng.Float64()*10000)
		want, err := systems[DTree].Locate(p)
		if err != nil {
			t.Fatal(err)
		}
		for kind, sys := range systems {
			got, err := sys.Locate(p)
			if err != nil {
				t.Fatalf("%v at %v: %v", kind, p, err)
			}
			if got != want {
				// Boundary ambiguity between structures: both scopes must
				// contain the point.
				scope, err := sys.ValidScope(got)
				if err != nil {
					t.Fatal(err)
				}
				poly := polygonOf(scope)
				if !poly.Contains(p) {
					t.Fatalf("%v located %v in %d whose scope excludes it (D-tree says %d)", kind, p, got, want)
				}
			}
		}
	}
}

func TestAccessProtocol(t *testing.T) {
	sys, err := New(testSites(50, 4), Config{PacketCapacity: 128})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	rng := rand.New(rand.NewSource(5))
	var lat, tune float64
	const q = 5000
	for i := 0; i < q; i++ {
		p := Pt(rng.Float64()*10000, rng.Float64()*10000)
		cost, err := sys.Access(p, rng.Float64()*float64(st.CyclePackets))
		if err != nil {
			t.Fatal(err)
		}
		if cost.Latency <= 0 || cost.TotalTuning() <= 0 {
			t.Fatalf("degenerate cost %+v", cost)
		}
		lat += cost.Latency
		tune += float64(cost.TotalTuning())
	}
	lat /= q
	tune /= q
	if lat < st.OptimalLatency {
		t.Errorf("average latency %v below the no-index optimum %v", lat, st.OptimalLatency)
	}
	if lat > 3*st.OptimalLatency {
		t.Errorf("average latency %v more than 3x optimal", lat)
	}
	if tune > lat/3 {
		t.Errorf("average tuning %v not a small fraction of latency %v", tune, lat)
	}
}

func TestNewFromScopes(t *testing.T) {
	area := Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	scopes := [][]Point{
		{Pt(0, 0), Pt(60, 0), Pt(50, 50), Pt(60, 100), Pt(0, 100)},
		{Pt(60, 0), Pt(100, 0), Pt(100, 100), Pt(60, 100), Pt(50, 50)},
	}
	sys, err := NewFromScopes(scopes, Config{Area: area, PacketCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sys.Locate(Pt(10, 50)); got != 0 {
		t.Errorf("left query = %d", got)
	}
	if got, _ := sys.Locate(Pt(90, 50)); got != 1 {
		t.Errorf("right query = %d", got)
	}
	scope, err := sys.ValidScope(0)
	if err != nil || len(scope) < 3 {
		t.Errorf("ValidScope: %v %v", scope, err)
	}
	if _, err := sys.ValidScope(5); err == nil {
		t.Error("out-of-range scope should fail")
	}
}

func TestConfigValidationAndErrors(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("no sites should fail")
	}
	if _, err := New(testSites(10, 6), Config{Index: IndexKind(99)}); err == nil {
		t.Error("unknown index kind should fail")
	}
	sys, err := New(testSites(10, 6), Config{M: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Stats().M != 3 {
		t.Errorf("fixed m not honored: %d", sys.Stats().M)
	}
	if _, err := sys.Locate(Pt(-500, -500)); err == nil {
		t.Error("query outside the service area should fail")
	}
}

func TestIndexKindString(t *testing.T) {
	names := map[IndexKind]string{
		DTree: "D-tree", TrianTree: "trian-tree", TrapTree: "trap-tree",
		RStarTree: "R*-tree", IndexKind(9): "IndexKind(9)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

// polygonOf adapts a []Point ring to a containment test without importing
// internal packages in the public-facing test.
type ring []Point

func polygonOf(pts []Point) ring { return ring(pts) }

func (r ring) Contains(p Point) bool {
	n := len(r)
	inside := false
	for i := 0; i < n; i++ {
		a, b := r[i], r[(i+1)%n]
		// On-edge check with a small tolerance.
		cross := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
		if cross < 1e-3 && cross > -1e-3 {
			if p.X >= minf(a.X, b.X)-1e-6 && p.X <= maxf(a.X, b.X)+1e-6 &&
				p.Y >= minf(a.Y, b.Y)-1e-6 && p.Y <= maxf(a.Y, b.Y)+1e-6 {
				return true
			}
		}
		if (a.Y > p.Y) != (b.Y > p.Y) {
			x := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if x > p.X {
				inside = !inside
			}
		}
	}
	return inside
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestTrajectory(t *testing.T) {
	sites := testSites(60, 11)
	sys, err := New(sites, Config{})
	if err != nil {
		t.Fatal(err)
	}
	legs, err := sys.Trajectory(Pt(100, 100), Pt(9900, 9900))
	if err != nil {
		t.Fatal(err)
	}
	if len(legs) < 3 {
		t.Fatalf("diagonal crossed only %d legs", len(legs))
	}
	for i, leg := range legs {
		got, err := sys.Locate(Pt(leg.At.X+1e-6*(9900-leg.At.X), leg.At.Y+1e-6*(9900-leg.At.Y)))
		if err != nil {
			t.Fatal(err)
		}
		_ = got // entry points sit on boundaries; just assert resolvability
		if i > 0 && legs[i].T <= legs[i-1].T {
			t.Fatal("non-increasing legs")
		}
	}
	// Other index kinds refuse.
	rsys, err := New(sites, Config{Index: RStarTree})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rsys.Trajectory(Pt(0, 0), Pt(1, 1)); err == nil {
		t.Error("trajectory on R*-tree system should fail")
	}
}
