// Command broadcastd serves a location-dependent dataset as a live (1, m)
// broadcast over TCP: every connection receives the framed packet stream —
// D-tree index copies interleaved with data buckets — exactly as the paper
// organizes the wireless channel. The channel can be made unreliable with
// the -loss/-burst/-corrupt flags (internal/channel fault models), in which
// case clients recover via the checksum and the next-index pointers. With
// -churn the site population changes while serving: random add/remove/move
// batches run through the incremental Voronoi maintainer and each rebuilt
// program is hot-swapped onto the air under a new generation, which live
// clients follow by restarting any query the swap caught mid-flight.
// SIGINT/SIGTERM drain connections to their cycle boundary before exiting.
// With -demo it also connects a client, runs a few queries through the
// streamed access protocol, and reports latency, tuning and recovery
// counts.
//
// With -snapshot the daemon restores its index from a flat-arena snapshot
// written by `dtreectl snapshot` (or a previous server's Swapper
// generation) instead of rebuilding the D-tree from the dataset: the
// restored program broadcasts cycles byte-identical to the writer's, so a
// restart serves the same air index without paying construction.
//
// With -snapshot-dir the sharded daemon gets the same zero-parse restart:
// if the directory holds one `shardN.dtsnap` per shard the fabric is
// restored from the slabs (no D-tree is built — only the cheap geometry is
// recomputed to validate the snapshots and pin the global numbering), and
// otherwise the daemon builds from -dataset and writes the per-shard
// snapshots there for the next start.
//
// With -shards S (S > 1) the daemon serves a multi-channel sharded fabric
// instead of a single channel: the service area is split into S balanced
// spatial partitions, each broadcast on its own listener (ports base..
// base+S-1 when -addr names a fixed port) with its own D-tree and its own
// generation counter, and every channel's index copies carry the
// replicated channel directory so a client's first probe routes to the
// owning shard. All shards share one metrics registry with per-shard
// label prefixes, and -churn republishes only the shards a batch actually
// touched.
//
// Usage:
//
//	broadcastd [-addr :7343] [-dataset hospital] [-capacity 256]
//	           [-snapshot index.dtsnap] [-snapshot-dir ""] [-shards 1]
//	           [-adjacency] [-slot-duration 0] [-seed 1]
//	           [-loss 0] [-burst 1] [-corrupt 0]
//	           [-churn 0] [-churn-ops 4] [-write-timeout 30s]
//	           [-drain-timeout 10s] [-debug-addr ""] [-demo]
//	           [-ingest-addr ""] [-ingest-queue 4096] [-ingest-policy reject]
//	           [-cut-max-ops 256] [-cut-interval 200ms]
//
// With -ingest-addr the daemon also accepts live site updates over HTTP:
// POST /ingest takes a JSON batch ({"ops":[{"op":"add","id":-1,"x":..,
// "y":..},{"op":"move","id":17,...},{"op":"remove","id":17}]}), admits it
// into a bounded queue (429 + Retry-After when full, policy configurable
// via -ingest-policy), coalesces per-site redundancy, and cuts hot-swapped
// generations at the -cut-max-ops / -cut-interval pace. Negative ids are
// client-chosen provisional handles for sites added in the same stream;
// SIGINT/SIGTERM drain the queue through final cuts before the broadcast
// stops. Requires a maintainable index, so it rejects -snapshot and
// -snapshot-dir, and like -churn it requires an explicit -seed.
//
// With -adjacency every index copy is prefixed with the self-describing
// region-adjacency appendix (neighbor lists + site coordinates), the wire
// substrate for continuous queries: a moving client caches the appendix
// once and answers standing window and kNN queries radio-free each cycle,
// revalidating instead of re-descending. Point-query demos skip the
// appendix via the length named in packet 0. Works with -churn and -shards;
// snapshots pin their own layout, so -snapshot/-snapshot-dir reject it
// (v2 slabs restore the appendix automatically).
//
// With -debug-addr the daemon also serves an HTTP debug endpoint:
// /metrics (the counters and histograms of every shard as JSON), /healthz
// (per-shard cycle position, generation on the air, connection count) and
// /trace (recent per-query Probe→Answer traces; populated by the -demo
// client).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"airindex/internal/channel"
	"airindex/internal/core"
	"airindex/internal/dataset"
	"airindex/internal/fabric"
	"airindex/internal/geom"
	"airindex/internal/ingest"
	"airindex/internal/obs"
	"airindex/internal/stream"
)

// config carries every flag value plus which ones were set explicitly, so
// validation can reject combinations whose defaults would silently lie
// (churn without a pinned seed is not reproducible).
type config struct {
	addr      string
	dataset   string
	n         int
	capacity  int
	snapshot  string
	snapDir   string
	shards    int
	slotDur   time.Duration
	seed      int64
	seedSet   bool
	loss      float64
	burst     float64
	corrupt   float64
	churn     time.Duration
	churnOps  int
	writeTO   time.Duration
	drainTO   time.Duration
	dbgAddr   string
	demo      bool
	adjacency bool

	ingestAddr   string
	ingestQueue  int
	ingestPolicy string
	cutMaxOps    int
	cutInterval  time.Duration
	ingestTuned  []string // ingest tuning flags the user set explicitly
}

// validateConfig rejects nonsensical flag combinations before any listener
// is opened. It is pure so the rules are unit-testable.
func validateConfig(c config) error {
	switch strings.ToLower(c.dataset) {
	case "uniform", "hospital", "park":
	default:
		return fmt.Errorf("unknown dataset %q (want uniform, hospital or park)", c.dataset)
	}
	if c.n < 1 {
		return fmt.Errorf("-n %d: need at least one site", c.n)
	}
	if c.capacity < 32 {
		return fmt.Errorf("-capacity %d: packets below 32 bytes cannot carry the frame header and payload stamps", c.capacity)
	}
	if c.shards < 1 {
		return fmt.Errorf("-shards %d: need at least one channel", c.shards)
	}
	if c.loss < 0 || c.loss >= 1 {
		return fmt.Errorf("-loss %v: loss rate must be in [0, 1)", c.loss)
	}
	if c.corrupt < 0 || c.corrupt >= 1 {
		return fmt.Errorf("-corrupt %v: corruption rate must be in [0, 1)", c.corrupt)
	}
	if c.burst < 1 {
		return fmt.Errorf("-burst %v: mean burst length must be >= 1 frame", c.burst)
	}
	if c.churn < 0 {
		return fmt.Errorf("-churn %v: churn interval cannot be negative", c.churn)
	}
	if c.churn > 0 && !c.seedSet {
		return fmt.Errorf("-churn %v without an explicit -seed: churned runs must be reproducible, pass -seed", c.churn)
	}
	if c.snapshot != "" && c.churn > 0 {
		return fmt.Errorf("-snapshot with -churn: a restored arena has no site maintainer to churn; rebuild from -dataset instead")
	}
	if c.snapshot != "" && c.shards > 1 {
		return fmt.Errorf("-snapshot with -shards %d: snapshots restore a single channel's index; use -snapshot-dir for per-shard restore", c.shards)
	}
	if c.snapDir != "" && c.shards <= 1 {
		return fmt.Errorf("-snapshot-dir with -shards %d: per-shard snapshots need a sharded fabric; use -snapshot for a single channel", c.shards)
	}
	if c.snapDir != "" && c.churn > 0 {
		return fmt.Errorf("-snapshot-dir with -churn: a restored arena has no site maintainer to churn; rebuild from -dataset instead")
	}
	if c.snapDir != "" && c.snapshot != "" {
		return fmt.Errorf("-snapshot and -snapshot-dir are mutually exclusive")
	}
	if c.adjacency && c.snapshot != "" {
		return fmt.Errorf("-adjacency with -snapshot: the snapshot pins whether the broadcast carries the appendix (v2 slabs restore it automatically); rebuild from -dataset to change it")
	}
	if c.adjacency && c.snapDir != "" {
		return fmt.Errorf("-adjacency with -snapshot-dir: the snapshots pin whether the broadcast carries the appendix (v2 slabs restore it automatically); rebuild from -dataset to change it")
	}
	if c.churnOps < 1 {
		return fmt.Errorf("-churn-ops %d: a churn batch needs at least one site operation", c.churnOps)
	}
	if c.slotDur < 0 {
		return fmt.Errorf("-slot-duration %v: cannot be negative", c.slotDur)
	}
	if c.writeTO < 0 {
		return fmt.Errorf("-write-timeout %v: cannot be negative", c.writeTO)
	}
	if c.drainTO <= 0 {
		return fmt.Errorf("-drain-timeout %v: must be positive", c.drainTO)
	}
	if c.ingestAddr != "" {
		if c.snapshot != "" {
			return fmt.Errorf("-ingest-addr with -snapshot: a restored arena has no site maintainer to ingest into; rebuild from -dataset instead")
		}
		if c.snapDir != "" {
			return fmt.Errorf("-ingest-addr with -snapshot-dir: a restored arena has no site maintainer to ingest into; rebuild from -dataset instead")
		}
		if !c.seedSet {
			return fmt.Errorf("-ingest-addr without an explicit -seed: live-update runs must be reproducible, pass -seed")
		}
	} else if len(c.ingestTuned) > 0 {
		return fmt.Errorf("-%s without -ingest-addr: ingest tuning has no effect when the ingest endpoint is disabled", c.ingestTuned[0])
	}
	if c.ingestQueue < 1 {
		return fmt.Errorf("-ingest-queue %d: the admission ring needs at least one slot", c.ingestQueue)
	}
	if c.cutMaxOps < 1 {
		return fmt.Errorf("-cut-max-ops %d: a generation cut needs at least one operation", c.cutMaxOps)
	}
	if c.cutInterval <= 0 {
		return fmt.Errorf("-cut-interval %v: must be positive", c.cutInterval)
	}
	if _, err := ingest.ParsePolicy(c.ingestPolicy); err != nil {
		return fmt.Errorf("-ingest-policy: %w", err)
	}
	return nil
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7343", "listen address (with -shards S > 1 and a fixed port, shard i listens on port+i)")
	flag.StringVar(&cfg.dataset, "dataset", "hospital", "uniform, hospital or park")
	flag.IntVar(&cfg.n, "n", 1000, "site count (uniform only)")
	flag.IntVar(&cfg.capacity, "capacity", 256, "packet capacity in bytes")
	flag.StringVar(&cfg.snapshot, "snapshot", "", "restore the index from this flat-arena snapshot file instead of building it (see dtreectl snapshot)")
	flag.StringVar(&cfg.snapDir, "snapshot-dir", "", "with -shards S > 1: restore every shard from DIR/shardN.dtsnap when present, else build and write the per-shard snapshots there")
	flag.IntVar(&cfg.shards, "shards", 1, "broadcast channels; > 1 serves the sharded fabric with a replicated channel directory")
	flag.DurationVar(&cfg.slotDur, "slot-duration", 0, "real-time pacing per slot (0 = full speed)")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for start slots, demo queries, churn and fault models (reproducible runs)")
	flag.Float64Var(&cfg.loss, "loss", 0, "frame loss rate per connection, [0, 1)")
	flag.Float64Var(&cfg.burst, "burst", 1, "mean loss-burst length in frames; > 1 selects bursty Gilbert-Elliott loss")
	flag.Float64Var(&cfg.corrupt, "corrupt", 0, "payload bit-corruption rate of delivered frames, [0, 1)")
	flag.DurationVar(&cfg.churn, "churn", 0, "interval between site-churn batches hot-swapped onto the air (0 = static program; requires -seed)")
	flag.IntVar(&cfg.churnOps, "churn-ops", 4, "site add/remove/move operations per churn batch")
	flag.DurationVar(&cfg.writeTO, "write-timeout", 30*time.Second, "per-write deadline; stalled clients are evicted (0 = never)")
	flag.DurationVar(&cfg.drainTO, "drain-timeout", 10*time.Second, "graceful-shutdown drain budget before stragglers are severed")
	flag.StringVar(&cfg.dbgAddr, "debug-addr", "", "serve /metrics, /healthz and /trace on this HTTP address (empty = disabled)")
	flag.BoolVar(&cfg.demo, "demo", false, "run a demo client against the server and exit")
	flag.BoolVar(&cfg.adjacency, "adjacency", false, "prefix every index copy with the region-adjacency appendix so continuous-query clients answer windows and kNN on air")
	flag.StringVar(&cfg.ingestAddr, "ingest-addr", "", "accept site add/remove/move batches as JSON POSTs on this HTTP address (empty = disabled; requires -seed)")
	flag.IntVar(&cfg.ingestQueue, "ingest-queue", 4096, "ingest admission ring capacity in operations (with -ingest-addr)")
	flag.StringVar(&cfg.ingestPolicy, "ingest-policy", "reject", "ingest overflow policy: reject, block or drop-move (with -ingest-addr)")
	flag.IntVar(&cfg.cutMaxOps, "cut-max-ops", 256, "cut a generation when this many coalesced operations are pending (with -ingest-addr)")
	flag.DurationVar(&cfg.cutInterval, "cut-interval", 200*time.Millisecond, "cut a generation at least this often while operations are pending (with -ingest-addr)")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			cfg.seedSet = true
		case "ingest-queue", "ingest-policy", "cut-max-ops", "cut-interval":
			cfg.ingestTuned = append(cfg.ingestTuned, f.Name)
		}
	})
	if err := validateConfig(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "broadcastd: invalid flags:", err)
		flag.Usage()
		os.Exit(2)
	}

	var ds dataset.Dataset
	switch strings.ToLower(cfg.dataset) {
	case "uniform":
		ds = dataset.Uniform(cfg.n, 1000)
	case "hospital":
		ds = dataset.Hospital()
	case "park":
		ds = dataset.Park()
	}

	if cfg.shards > 1 {
		runSharded(cfg, ds)
		return
	}
	runSingle(cfg, ds)
}

// runSingle is the classic one-channel daemon.
func runSingle(cfg config, ds dataset.Dataset) {
	// With churn the swapper owns the program pipeline (Voronoi maintainer
	// -> D-tree build -> rendered cycle); with -snapshot the program is
	// restored zero-parse from a flat-arena slab; a static run compiles one
	// program the classic way.
	var sw *stream.Swapper
	var prog *stream.Program
	srcName, instances := ds.Name, ds.N()
	switch {
	case cfg.churn > 0 || cfg.ingestAddr != "" || cfg.adjacency:
		// -adjacency routes the static build through the swapper too: its
		// compiler is the one path that attaches the appendix to the arena.
		var err error
		if cfg.adjacency {
			sw, err = stream.NewSwapperWithAdjacency(ds.Area, ds.Sites, cfg.capacity, 0)
		} else {
			sw, err = stream.NewSwapper(ds.Area, ds.Sites, cfg.capacity, 0)
		}
		if err != nil {
			fatal(err)
		}
		prog = sw.Program()
	case cfg.snapshot != "":
		var fp *core.FlatPaged
		var err error
		prog, fp, err = stream.ProgramFromSnapshotFile(cfg.snapshot, 0)
		if err != nil {
			fatal(err)
		}
		// The snapshot pins the packet geometry; the restored capacity
		// overrides -capacity so the demo client frames line up.
		cfg.capacity = fp.Params.PacketCapacity
		srcName, instances = fmt.Sprintf("snapshot %s", cfg.snapshot), fp.Flat.N
		fmt.Printf("broadcastd: restored index from %s: %d regions, no rebuild\n", cfg.snapshot, fp.Flat.N)
	default:
		sub, err := ds.Subdivision()
		if err != nil {
			fatal(err)
		}
		prog, err = stream.NewDTreeProgram(sub, cfg.capacity, 0)
		if err != nil {
			fatal(err)
		}
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fatal(err)
	}
	srv, err := stream.NewServer(ln, prog)
	if err != nil {
		fatal(err)
	}
	srv.SlotDuration = cfg.slotDur
	srv.WriteTimeout = cfg.writeTO
	srv.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "broadcastd: "+format+"\n", args...)
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	cycle := prog.Sched.CycleLen()
	srv.StartSlot = func() int { return rng.Intn(cycle) }
	if sw != nil {
		sw.Bind(srv)
	}

	spec := channel.Spec{Loss: cfg.loss, Burst: cfg.burst, Corrupt: cfg.corrupt, Seed: cfg.seed}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}
	stats := &channel.Stats{}
	if spec.Enabled() {
		srv.Channel = spec.Factory(stats)
	}

	// Render the broadcast cycle up front so the first connection streams
	// from the shared frame cache instead of paying the build.
	frames, bytes, err := prog.RenderedSize()
	if err != nil {
		fatal(err)
	}

	// Debug endpoint: server metrics, health, and the query traces the
	// demo client records.
	traces := obs.NewTraceLog(256)
	serveDebug(cfg.dbgAddr, srv.Metrics().Registry(), func() any { return srv.Health() }, traces)

	fmt.Printf("broadcastd: %s, %d instances, %d B packets, index %d packets, m=%d, cycle %d slots, listening on %s\n",
		srcName, instances, cfg.capacity, len(prog.IndexPackets), prog.Sched.M, cycle, ln.Addr())
	fmt.Printf("broadcastd: rendered cycle cached: %d frames, %.1f KB\n", frames, float64(bytes)/1024)
	adjPkts := 0
	if cfg.adjacency {
		if adjPkts, err = core.AdjacencyPacketCount(prog.IndexPackets[0]); err != nil {
			fatal(err)
		}
		fmt.Printf("broadcastd: adjacency appendix on air: %d packet(s) ahead of each index copy\n", adjPkts)
	}
	if spec.Enabled() {
		fmt.Printf("broadcastd: unreliable channel: %s loss %.2f%% (burst %.1f), corruption %.2f%%, seed %d\n",
			spec.Model(spec.Seed).Name(), 100*cfg.loss, cfg.burst, 100*cfg.corrupt, cfg.seed)
	}
	if sw != nil && cfg.churn > 0 {
		fmt.Printf("broadcastd: live churn: %d site ops every %v, hot-swapped at cycle boundaries\n", cfg.churnOps, cfg.churn)
	}

	var pipe *ingest.Pipeline
	var ingestLn net.Listener
	if cfg.ingestAddr != "" {
		pipe, ingestLn = startIngest(cfg, ingest.SwapperSink(sw), srv.Metrics().Registry())
	}

	stopChurn := make(chan struct{})
	if sw != nil && cfg.churn > 0 {
		go runChurn(sw, cfg.churn, cfg.churnOps, ds.N(), cfg.seed+99, stopChurn)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	if !cfg.demo {
		waitForSignal(cfg, stopChurn, pipe, ingestLn, []*stream.Server{srv}, serveErr)
		return
	}

	client, err := stream.Dial(ln.Addr().String(), cfg.capacity)
	if err != nil {
		fatal(err)
	}
	client.Metrics = stream.NewClientMetrics()
	client.Traces = traces

	qrng := rand.New(rand.NewSource(cfg.seed))
	for q := 0; q < 8; q++ {
		p := geom.Pt(qrng.Float64()*10000, qrng.Float64()*10000)
		var res stream.Result
		var err error
		if cfg.adjacency {
			res, err = adjacencyPointQuery(client, p)
		} else {
			res, err = client.Query(p)
		}
		if err != nil {
			fatal(err)
		}
		if err := stream.VerifyStampedData(res.Data, cfg.capacity, res.Bucket); err != nil {
			fatal(err)
		}
		fmt.Printf("query (%5.0f,%5.0f) -> instance %4d   latency %6.0f slots, tuned %2d packets (index %d), dozed %d frames",
			p.X, p.Y, res.Bucket, res.Latency, res.TotalTuning(), res.TuneIndex, res.DozedFrames)
		if res.Recoveries > 0 || res.LostSlots > 0 || res.CorruptFrames > 0 {
			fmt.Printf(", recovered %d (lost %d slots, %d corrupt)", res.Recoveries, res.LostSlots, res.CorruptFrames)
		}
		if res.EpochRestarts > 0 {
			fmt.Printf(", %d epoch restarts", res.EpochRestarts)
		}
		if sw != nil {
			fmt.Printf(" [gen %d]", res.Generation)
		}
		fmt.Println()
	}
	if lat, tune := client.Metrics.LatencySlots.Snapshot(), client.Metrics.TuningPackets.Snapshot(); lat.Count > 0 {
		fmt.Printf("demo: %d queries, latency p50 %d / p99 %d slots, tuning p50 %d / p99 %d packets\n",
			lat.Count, lat.P50, lat.P99, tune.P50, tune.P99)
	}
	client.Close()
	if spec.Enabled() {
		fmt.Printf("channel: %v\n", stats.Snapshot())
	}
	shutdownAll(cfg, stopChurn, pipe, ingestLn, []*stream.Server{srv}, serveErr)
}

// adjacencyPointQuery runs one point query against a broadcast whose index
// copies carry the region-adjacency appendix. Packet 0 names the appendix
// length, so the descent offset is rediscovered on every probe and stays
// correct across hot swaps that resize the appendix.
func adjacencyPointQuery(c *stream.Client, p geom.Point) (stream.Result, error) {
	var res stream.Result
	for attempt := 0; attempt < 5; attempt++ {
		if err := c.Probe(&res); err != nil {
			return res, err
		}
		head, err := c.FetchIndexPackets(&res, 0, 1)
		if errors.Is(err, stream.ErrStaleGeneration) {
			continue
		}
		if err != nil {
			return res, err
		}
		count, err := core.AdjacencyPacketCount(head[0])
		if err != nil {
			return res, err
		}
		if err := c.QueryResume(p, count, &res); errors.Is(err, stream.ErrStaleGeneration) {
			continue
		} else if err != nil {
			return res, err
		}
		return res, nil
	}
	return res, fmt.Errorf("query abandoned: broadcast generations outpaced the appendix discovery")
}

// runSharded serves the S-channel fabric: one listener, program and
// generation counter per shard, a shared metrics registry with per-shard
// prefixes, and churn that republishes only the shards a batch touched.
func runSharded(cfg config, ds dataset.Dataset) {
	S := cfg.shards
	opts := fabric.Options{Adjacency: cfg.adjacency}
	var fsw *fabric.Swapper
	var progs []*stream.Program
	var dirPackets, channels int
	switch {
	case cfg.churn > 0 || cfg.ingestAddr != "":
		var err error
		fsw, err = fabric.NewSwapper(ds.Area, ds.Sites, S, cfg.capacity, opts)
		if err != nil {
			fatal(err)
		}
		progs = fsw.Programs()
		dirPackets = fsw.DirPackets()
	case cfg.snapDir != "" && fileExists(fabric.SnapshotPath(cfg.snapDir, 0)):
		f, err := fabric.RestoreSnapshotDir(ds.Area, ds.Sites, S, cfg.snapDir, opts)
		if err != nil {
			fatal(err)
		}
		// The snapshots pin the packet geometry; the restored capacity
		// overrides -capacity so the demo client frames line up.
		cfg.capacity = f.Capacity
		progs = f.Programs()
		dirPackets = f.DirPackets
		fmt.Printf("broadcastd: restored %d shards from %s, no rebuild\n", S, cfg.snapDir)
	default:
		f, err := fabric.Build(ds.Area, ds.Sites, S, cfg.capacity, opts)
		if err != nil {
			fatal(err)
		}
		progs = f.Programs()
		dirPackets = f.DirPackets
		if cfg.snapDir != "" {
			if err := f.WriteSnapshotDir(cfg.snapDir); err != nil {
				fatal(err)
			}
			fmt.Printf("broadcastd: wrote %d shard snapshots to %s for the next start\n", S, cfg.snapDir)
		}
	}
	channels = len(progs)

	reg := obs.NewRegistry()
	rng := rand.New(rand.NewSource(cfg.seed))
	srvs := make([]*stream.Server, channels)
	addrs := make([]string, channels)
	serveErr := make(chan error, channels)
	for ch := 0; ch < channels; ch++ {
		ln, err := net.Listen("tcp", shardAddr(cfg.addr, ch))
		if err != nil {
			fatal(fmt.Errorf("shard %d: %w", ch, err))
		}
		srv, err := stream.NewServer(ln, progs[ch])
		if err != nil {
			fatal(err)
		}
		srv.UseMetrics(stream.NewMetricsIn(reg, fmt.Sprintf("shard%d_", ch)))
		srv.SlotDuration = cfg.slotDur
		srv.WriteTimeout = cfg.writeTO
		shard := ch
		srv.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, fmt.Sprintf("broadcastd: shard %d: ", shard)+format+"\n", args...)
		}
		cycle := progs[ch].Sched.CycleLen()
		start := rng.Intn(cycle)
		srv.StartSlot = func() int { return start }
		spec := channel.Spec{Loss: cfg.loss, Burst: cfg.burst, Corrupt: cfg.corrupt, Seed: cfg.seed + int64(ch)}
		if err := spec.Validate(); err != nil {
			fatal(err)
		}
		if spec.Enabled() {
			srv.Channel = spec.Factory(nil)
		}
		if fsw != nil {
			fsw.Bind(ch, srv)
		}
		srvs[ch] = srv
		addrs[ch] = ln.Addr().String()
	}

	traces := obs.NewTraceLog(256)
	serveDebug(cfg.dbgAddr, reg, func() any {
		health := make(map[string]any, channels)
		for ch, srv := range srvs {
			health[fmt.Sprintf("shard%d", ch)] = srv.Health()
		}
		return health
	}, traces)

	fmt.Printf("broadcastd: %s, %d instances, %d B packets, %d shards, directory %d packet(s) replicated on every channel\n",
		ds.Name, ds.N(), cfg.capacity, channels, dirPackets)
	if cfg.adjacency {
		fmt.Printf("broadcastd: adjacency appendix on air behind every channel directory (continuous window/kNN enabled)\n")
	}
	for ch, srv := range srvs {
		prog := progs[ch]
		fmt.Printf("broadcastd: shard %d on %s: index %d packets, m=%d, cycle %d slots\n",
			ch, srv.Addr(), len(prog.IndexPackets), prog.Sched.M, prog.Sched.CycleLen())
	}
	if cfg.loss > 0 || cfg.corrupt > 0 {
		fmt.Printf("broadcastd: unreliable channels: loss %.2f%% (burst %.1f), corruption %.2f%%, per-shard seeds %d..%d\n",
			100*cfg.loss, cfg.burst, 100*cfg.corrupt, cfg.seed, cfg.seed+int64(channels-1))
	}
	if fsw != nil && cfg.churn > 0 {
		fmt.Printf("broadcastd: live churn: %d site ops every %v, republishing only the shards each batch touches\n",
			cfg.churnOps, cfg.churn)
	}

	var pipe *ingest.Pipeline
	var ingestLn net.Listener
	if cfg.ingestAddr != "" {
		pipe, ingestLn = startIngest(cfg, ingest.FabricSink(fsw), reg)
	}

	stopChurn := make(chan struct{})
	if fsw != nil && cfg.churn > 0 {
		go runFabricChurn(fsw, cfg.churn, cfg.churnOps, ds.N(), cfg.seed+99, stopChurn)
	}
	for _, srv := range srvs {
		srv := srv
		go func() { serveErr <- srv.Serve() }()
	}

	if !cfg.demo {
		waitForSignal(cfg, stopChurn, pipe, ingestLn, srvs, serveErr)
		return
	}

	client := fabric.NewClient(addrs, cfg.capacity)
	client.Adjacency = cfg.adjacency
	client.Metrics = stream.NewClientMetrics()
	client.Traces = traces
	qrng := rand.New(rand.NewSource(cfg.seed))
	for q := 0; q < 8; q++ {
		p := geom.Pt(
			ds.Area.MinX+qrng.Float64()*ds.Area.W(),
			ds.Area.MinY+qrng.Float64()*ds.Area.H(),
		)
		entry := qrng.Intn(channels)
		res, err := client.QueryFrom(p, entry)
		if err != nil {
			fatal(err)
		}
		if err := stream.VerifyStampedData(res.Data, cfg.capacity, res.Bucket); err != nil {
			fatal(err)
		}
		fmt.Printf("query (%5.0f,%5.0f) entry ch%d -> shard %d instance %4d   latency %6.0f slots, tuned %2d packets (dir %d, index %d), %d hop(s)",
			p.X, p.Y, entry, res.Shard, res.Global, res.Latency, res.TotalTuning(), res.TuneDirectory, res.TuneIndex, res.Hops)
		if res.Recoveries > 0 || res.LostSlots > 0 || res.CorruptFrames > 0 {
			fmt.Printf(", recovered %d (lost %d slots, %d corrupt)", res.Recoveries, res.LostSlots, res.CorruptFrames)
		}
		if res.EpochRestarts > 0 {
			fmt.Printf(", %d epoch restarts", res.EpochRestarts)
		}
		if fsw != nil {
			fmt.Printf(" [gen %d]", res.Generation)
		}
		fmt.Println()
	}
	if lat, tune := client.Metrics.LatencySlots.Snapshot(), client.Metrics.TuningPackets.Snapshot(); lat.Count > 0 {
		fmt.Printf("demo: %d queries, latency p50 %d / p99 %d slots, tuning p50 %d / p99 %d packets\n",
			lat.Count, lat.P50, lat.P99, tune.P50, tune.P99)
	}
	client.Close()
	shutdownAll(cfg, stopChurn, pipe, ingestLn, srvs, serveErr)
}

// shardAddr derives shard ch's listen address from the base address: a
// fixed port becomes port+ch, port 0 stays 0 (the kernel picks).
func shardAddr(base string, ch int) string {
	host, port, err := net.SplitHostPort(base)
	if err != nil {
		return base
	}
	p, err := strconv.Atoi(port)
	if err != nil || p == 0 {
		return base
	}
	return net.JoinHostPort(host, strconv.Itoa(p+ch))
}

// startIngest launches the asynchronous update pipeline in front of the
// swapper and its HTTP admission endpoint, registering the pipeline's
// metrics in the server registry so /metrics shows broadcast and ingest
// behavior in one document.
func startIngest(cfg config, sink ingest.Sink, reg *obs.Registry) (*ingest.Pipeline, net.Listener) {
	policy, err := ingest.ParsePolicy(cfg.ingestPolicy)
	if err != nil {
		fatal(err) // unreachable: validateConfig already parsed it
	}
	pipe := ingest.Start(sink, ingest.Config{
		QueueCap:    cfg.ingestQueue,
		Policy:      policy,
		CutMaxOps:   cfg.cutMaxOps,
		CutInterval: cfg.cutInterval,
		Metrics:     ingest.NewMetricsIn(reg, "ingest_"),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "broadcastd: "+format+"\n", args...)
		},
	})
	ln, err := net.Listen("tcp", cfg.ingestAddr)
	if err != nil {
		fatal(err)
	}
	go func() {
		if err := http.Serve(ln, ingest.NewHandler(pipe)); err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintln(os.Stderr, "broadcastd: ingest endpoint:", err)
		}
	}()
	fmt.Printf("broadcastd: ingest endpoint on http://%s (POST /ingest; queue %d ops, policy %s, cuts at %d ops or every %v)\n",
		ln.Addr(), cfg.ingestQueue, cfg.ingestPolicy, cfg.cutMaxOps, cfg.cutInterval)
	return pipe, ln
}

// serveDebug starts the HTTP debug endpoint when addr is non-empty.
func serveDebug(addr string, reg *obs.Registry, health func() any, traces *obs.TraceLog) {
	if addr == "" {
		return
	}
	dln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	handler := obs.NewHandler(reg, health, traces)
	go func() {
		if err := http.Serve(dln, handler); err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintln(os.Stderr, "broadcastd: debug endpoint:", err)
		}
	}()
	fmt.Printf("broadcastd: debug endpoint on http://%s (/metrics /healthz /trace)\n", dln.Addr())
}

// waitForSignal blocks until SIGINT/SIGTERM or the first serve error, then
// drains the ingest pipeline and every server.
func waitForSignal(cfg config, stopChurn chan struct{}, pipe *ingest.Pipeline, ingestLn net.Listener, srvs []*stream.Server, serveErr chan error) {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Printf("broadcastd: %v: draining connections (budget %v)\n", sig, cfg.drainTO)
		shutdownAll(cfg, stopChurn, pipe, ingestLn, srvs, serveErr)
		fmt.Println("broadcastd: stopped")
	case err := <-serveErr:
		close(stopChurn)
		if err != nil && !errors.Is(err, stream.ErrServerClosed) {
			fatal(err)
		}
	}
}

// shutdownAll stops churn, drains the ingest pipeline through its final
// generation cuts (admitted operations reach the air before the air goes
// away), then drains every server in parallel within the drain budget.
func shutdownAll(cfg config, stopChurn chan struct{}, pipe *ingest.Pipeline, ingestLn net.Listener, srvs []*stream.Server, serveErr chan error) {
	close(stopChurn)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTO)
	defer cancel()
	if pipe != nil {
		ingestLn.Close() // new batches now land on a dead socket, not the queue
		if err := pipe.Close(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "broadcastd: ingest drain incomplete:", err)
		} else {
			fmt.Println("broadcastd: ingest queue drained")
		}
	}
	done := make(chan error, len(srvs))
	for _, srv := range srvs {
		srv := srv
		go func() { done <- srv.Shutdown(ctx) }()
	}
	for range srvs {
		if err := <-done; err != nil {
			fmt.Fprintln(os.Stderr, "broadcastd: drain incomplete:", err)
		}
	}
	for range srvs {
		if err := <-serveErr; err != nil && !errors.Is(err, stream.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "broadcastd: serve:", err)
			os.Exit(1)
		}
	}
}

// runChurn applies a random site batch through the swapper at every tick,
// keeping the live population near n0, until stop closes.
func runChurn(sw *stream.Swapper, every time.Duration, opsPerBatch, n0 int, seed int64, stop chan struct{}) {
	rng := rand.New(rand.NewSource(seed))
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		gen, applied, err := sw.Apply(churnBatch(sw.LiveSiteIDs(), rng, opsPerBatch, n0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "broadcastd: churn:", err)
			continue
		}
		fmt.Printf("broadcastd: generation %d on the air (%d site ops, %d live sites)\n", gen, len(applied), sw.Len())
	}
}

// runFabricChurn is runChurn against the sharded fabric: each batch
// republishes only the shards whose clipped content changed, so the log
// line reports the per-shard generation vector.
func runFabricChurn(sw *fabric.Swapper, every time.Duration, opsPerBatch, n0 int, seed int64, stop chan struct{}) {
	rng := rand.New(rand.NewSource(seed))
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		gens, applied, err := sw.Apply(churnBatch(sw.LiveSiteIDs(), rng, opsPerBatch, n0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "broadcastd: churn:", err)
			continue
		}
		fmt.Printf("broadcastd: shard generations %v on the air (%d site ops, %d live sites)\n", gens, len(applied), sw.Len())
	}
}

// churnBatch composes one random add/remove/move batch that keeps the live
// population hovering around n0.
func churnBatch(ids []int, rng *rand.Rand, opsPerBatch, n0 int) []stream.SiteOp {
	ops := make([]stream.SiteOp, 0, opsPerBatch)
	for len(ops) < opsPerBatch {
		p := geom.Pt(
			dataset.Area.MinX+rng.Float64()*dataset.Area.W(),
			dataset.Area.MinY+rng.Float64()*dataset.Area.H(),
		)
		switch k := rng.Intn(3); {
		case k == 0 || len(ids) <= n0/2:
			ops = append(ops, stream.SiteOp{Kind: stream.OpAdd, P: p})
		case k == 1 && len(ids) > n0/2:
			j := ids[rng.Intn(len(ids))]
			ops = append(ops, stream.SiteOp{Kind: stream.OpRemove, ID: j})
			ids = dropID(ids, j)
		default:
			j := ids[rng.Intn(len(ids))]
			ops = append(ops, stream.SiteOp{Kind: stream.OpMove, ID: j, P: p})
			ids = dropID(ids, j)
		}
	}
	return ops
}

func dropID(ids []int, id int) []int {
	out := make([]int, 0, len(ids))
	for _, j := range ids {
		if j != id {
			out = append(out, j)
		}
	}
	return out
}

// fileExists reports whether path names an existing file, deciding between
// the restore and build-then-write paths of -snapshot-dir.
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "broadcastd:", err)
	os.Exit(1)
}
