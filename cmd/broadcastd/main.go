// Command broadcastd serves a location-dependent dataset as a live (1, m)
// broadcast over TCP: every connection receives the framed packet stream —
// D-tree index copies interleaved with data buckets — exactly as the paper
// organizes the wireless channel. With -demo it also connects a client,
// runs a few queries through the streamed access protocol, and reports
// latency and tuning.
//
// Usage:
//
//	broadcastd [-addr :7343] [-dataset hospital] [-capacity 256]
//	           [-slot-duration 0] [-demo]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"time"

	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/stream"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7343", "listen address")
		name     = flag.String("dataset", "hospital", "uniform, hospital or park")
		n        = flag.Int("n", 1000, "site count (uniform only)")
		capacity = flag.Int("capacity", 256, "packet capacity in bytes")
		slotDur  = flag.Duration("slot-duration", 0, "real-time pacing per slot (0 = full speed)")
		demo     = flag.Bool("demo", false, "run a demo client against the server and exit")
	)
	flag.Parse()

	var ds dataset.Dataset
	switch strings.ToLower(*name) {
	case "uniform":
		ds = dataset.Uniform(*n, 1000)
	case "hospital":
		ds = dataset.Hospital()
	case "park":
		ds = dataset.Park()
	default:
		fatal(fmt.Errorf("unknown dataset %q", *name))
	}
	sub, err := ds.Subdivision()
	if err != nil {
		fatal(err)
	}
	prog, err := stream.NewDTreeProgram(sub, *capacity, 0)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv, err := stream.NewServer(ln, prog)
	if err != nil {
		fatal(err)
	}
	srv.SlotDuration = *slotDur
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	cycle := prog.Sched.CycleLen()
	srv.StartSlot = func() int { return rng.Intn(cycle) }

	fmt.Printf("broadcastd: %s, %d instances, %d B packets, index %d packets, m=%d, cycle %d slots, listening on %s\n",
		ds.Name, ds.N(), *capacity, len(prog.IndexPackets), prog.Sched.M, cycle, ln.Addr())

	if !*demo {
		if err := srv.Serve(); err != nil {
			fatal(err)
		}
		return
	}

	go srv.Serve() //nolint:errcheck
	defer srv.Close()
	client, err := stream.Dial(ln.Addr().String(), *capacity)
	if err != nil {
		fatal(err)
	}
	defer client.Close()

	qrng := rand.New(rand.NewSource(1))
	for q := 0; q < 8; q++ {
		p := geom.Pt(qrng.Float64()*10000, qrng.Float64()*10000)
		res, err := client.Query(p)
		if err != nil {
			fatal(err)
		}
		if err := stream.VerifyStampedData(res.Data, *capacity, res.Bucket); err != nil {
			fatal(err)
		}
		fmt.Printf("query (%5.0f,%5.0f) -> instance %4d   latency %6.0f slots, tuned %2d packets (index %d), dozed %d frames\n",
			p.X, p.Y, res.Bucket, res.Latency, res.TotalTuning(), res.TuneIndex, res.DozedFrames)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "broadcastd:", err)
	os.Exit(1)
}
