// Command broadcastd serves a location-dependent dataset as a live (1, m)
// broadcast over TCP: every connection receives the framed packet stream —
// D-tree index copies interleaved with data buckets — exactly as the paper
// organizes the wireless channel. The channel can be made unreliable with
// the -loss/-burst/-corrupt flags (internal/channel fault models), in which
// case clients recover via the checksum and the next-index pointers. With
// -churn the site population changes while serving: random add/remove/move
// batches run through the incremental Voronoi maintainer and each rebuilt
// program is hot-swapped onto the air under a new generation, which live
// clients follow by restarting any query the swap caught mid-flight.
// SIGINT/SIGTERM drain connections to their cycle boundary before exiting.
// With -demo it also connects a client, runs a few queries through the
// streamed access protocol, and reports latency, tuning and recovery
// counts.
//
// Usage:
//
//	broadcastd [-addr :7343] [-dataset hospital] [-capacity 256]
//	           [-slot-duration 0] [-seed 1]
//	           [-loss 0] [-burst 1] [-corrupt 0]
//	           [-churn 0] [-churn-ops 4] [-write-timeout 30s]
//	           [-drain-timeout 10s] [-debug-addr ""] [-demo]
//
// With -debug-addr the daemon also serves an HTTP debug endpoint:
// /metrics (the server counters and histograms as JSON), /healthz (cycle
// position, generation on the air, connection count) and /trace (recent
// per-query Probe→Answer traces; populated by the -demo client).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"airindex/internal/channel"
	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/obs"
	"airindex/internal/stream"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7343", "listen address")
		name     = flag.String("dataset", "hospital", "uniform, hospital or park")
		n        = flag.Int("n", 1000, "site count (uniform only)")
		capacity = flag.Int("capacity", 256, "packet capacity in bytes")
		slotDur  = flag.Duration("slot-duration", 0, "real-time pacing per slot (0 = full speed)")
		seed     = flag.Int64("seed", 1, "seed for start slots, demo queries, churn and fault models (reproducible runs)")
		loss     = flag.Float64("loss", 0, "frame loss rate per connection, [0, 1)")
		burst    = flag.Float64("burst", 1, "mean loss-burst length in frames; > 1 selects bursty Gilbert-Elliott loss")
		corrupt  = flag.Float64("corrupt", 0, "payload bit-corruption rate of delivered frames, [0, 1)")
		churn    = flag.Duration("churn", 0, "interval between site-churn batches hot-swapped onto the air (0 = static program)")
		churnOps = flag.Int("churn-ops", 4, "site add/remove/move operations per churn batch")
		writeTO  = flag.Duration("write-timeout", 30*time.Second, "per-write deadline; stalled clients are evicted (0 = never)")
		drainTO  = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget before stragglers are severed")
		dbgAddr  = flag.String("debug-addr", "", "serve /metrics, /healthz and /trace on this HTTP address (empty = disabled)")
		demo     = flag.Bool("demo", false, "run a demo client against the server and exit")
	)
	flag.Parse()

	var ds dataset.Dataset
	switch strings.ToLower(*name) {
	case "uniform":
		ds = dataset.Uniform(*n, 1000)
	case "hospital":
		ds = dataset.Hospital()
	case "park":
		ds = dataset.Park()
	default:
		fatal(fmt.Errorf("unknown dataset %q", *name))
	}

	// With churn the swapper owns the program pipeline (Voronoi maintainer
	// -> D-tree build -> rendered cycle); a static run compiles one program
	// the classic way.
	var sw *stream.Swapper
	var prog *stream.Program
	if *churn > 0 {
		var err error
		sw, err = stream.NewSwapper(ds.Area, ds.Sites, *capacity, 0)
		if err != nil {
			fatal(err)
		}
		prog = sw.Program()
	} else {
		sub, err := ds.Subdivision()
		if err != nil {
			fatal(err)
		}
		prog, err = stream.NewDTreeProgram(sub, *capacity, 0)
		if err != nil {
			fatal(err)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv, err := stream.NewServer(ln, prog)
	if err != nil {
		fatal(err)
	}
	srv.SlotDuration = *slotDur
	srv.WriteTimeout = *writeTO
	srv.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "broadcastd: "+format+"\n", args...)
	}
	rng := rand.New(rand.NewSource(*seed))
	cycle := prog.Sched.CycleLen()
	srv.StartSlot = func() int { return rng.Intn(cycle) }
	if sw != nil {
		sw.Bind(srv)
	}

	spec := channel.Spec{Loss: *loss, Burst: *burst, Corrupt: *corrupt, Seed: *seed}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}
	stats := &channel.Stats{}
	if spec.Enabled() {
		srv.Channel = spec.Factory(stats)
	}

	// Render the broadcast cycle up front so the first connection streams
	// from the shared frame cache instead of paying the build.
	frames, bytes, err := prog.RenderedSize()
	if err != nil {
		fatal(err)
	}

	// Debug endpoint: server metrics, health, and the query traces the
	// demo client records.
	traces := obs.NewTraceLog(256)
	if *dbgAddr != "" {
		dln, err := net.Listen("tcp", *dbgAddr)
		if err != nil {
			fatal(err)
		}
		handler := obs.NewHandler(srv.Metrics().Registry(), func() any { return srv.Health() }, traces)
		go func() {
			if err := http.Serve(dln, handler); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "broadcastd: debug endpoint:", err)
			}
		}()
		fmt.Printf("broadcastd: debug endpoint on http://%s (/metrics /healthz /trace)\n", dln.Addr())
	}

	fmt.Printf("broadcastd: %s, %d instances, %d B packets, index %d packets, m=%d, cycle %d slots, listening on %s\n",
		ds.Name, ds.N(), *capacity, len(prog.IndexPackets), prog.Sched.M, cycle, ln.Addr())
	fmt.Printf("broadcastd: rendered cycle cached: %d frames, %.1f KB\n", frames, float64(bytes)/1024)
	if spec.Enabled() {
		fmt.Printf("broadcastd: unreliable channel: %s loss %.2f%% (burst %.1f), corruption %.2f%%, seed %d\n",
			spec.Model(spec.Seed).Name(), 100**loss, *burst, 100**corrupt, *seed)
	}
	if sw != nil {
		fmt.Printf("broadcastd: live churn: %d site ops every %v, hot-swapped at cycle boundaries\n", *churnOps, *churn)
	}

	stopChurn := make(chan struct{})
	if sw != nil {
		go runChurn(sw, *churn, *churnOps, ds.N(), *seed+99, stopChurn)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	if !*demo {
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		select {
		case sig := <-sigs:
			fmt.Printf("broadcastd: %v: draining connections (budget %v)\n", sig, *drainTO)
			close(stopChurn)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "broadcastd: drain incomplete:", err)
			}
			if err := <-serveErr; err != nil && !errors.Is(err, stream.ErrServerClosed) {
				fatal(err)
			}
			fmt.Println("broadcastd: stopped")
			return
		case err := <-serveErr:
			if err != nil && !errors.Is(err, stream.ErrServerClosed) {
				fatal(err)
			}
			return
		}
	}

	client, err := stream.Dial(ln.Addr().String(), *capacity)
	if err != nil {
		fatal(err)
	}
	client.Metrics = stream.NewClientMetrics()
	client.Traces = traces

	qrng := rand.New(rand.NewSource(*seed))
	for q := 0; q < 8; q++ {
		p := geom.Pt(qrng.Float64()*10000, qrng.Float64()*10000)
		res, err := client.Query(p)
		if err != nil {
			fatal(err)
		}
		if err := stream.VerifyStampedData(res.Data, *capacity, res.Bucket); err != nil {
			fatal(err)
		}
		fmt.Printf("query (%5.0f,%5.0f) -> instance %4d   latency %6.0f slots, tuned %2d packets (index %d), dozed %d frames",
			p.X, p.Y, res.Bucket, res.Latency, res.TotalTuning(), res.TuneIndex, res.DozedFrames)
		if res.Recoveries > 0 || res.LostSlots > 0 || res.CorruptFrames > 0 {
			fmt.Printf(", recovered %d (lost %d slots, %d corrupt)", res.Recoveries, res.LostSlots, res.CorruptFrames)
		}
		if res.EpochRestarts > 0 {
			fmt.Printf(", %d epoch restarts", res.EpochRestarts)
		}
		if sw != nil {
			fmt.Printf(" [gen %d]", res.Generation)
		}
		fmt.Println()
	}
	if lat, tune := client.Metrics.LatencySlots.Snapshot(), client.Metrics.TuningPackets.Snapshot(); lat.Count > 0 {
		fmt.Printf("demo: %d queries, latency p50 %d / p99 %d slots, tuning p50 %d / p99 %d packets\n",
			lat.Count, lat.P50, lat.P99, tune.P50, tune.P99)
	}
	client.Close()
	if spec.Enabled() {
		fmt.Printf("channel: %v\n", stats.Snapshot())
	}
	close(stopChurn)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "broadcastd: drain incomplete:", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, stream.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "broadcastd: serve:", err)
		os.Exit(1)
	}
}

// runChurn applies a random site batch through the swapper at every tick,
// keeping the live population near n0, until stop closes.
func runChurn(sw *stream.Swapper, every time.Duration, opsPerBatch, n0 int, seed int64, stop chan struct{}) {
	rng := rand.New(rand.NewSource(seed))
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		ids := sw.LiveSiteIDs()
		ops := make([]stream.SiteOp, 0, opsPerBatch)
		for len(ops) < opsPerBatch {
			p := geom.Pt(
				dataset.Area.MinX+rng.Float64()*dataset.Area.W(),
				dataset.Area.MinY+rng.Float64()*dataset.Area.H(),
			)
			switch k := rng.Intn(3); {
			case k == 0 || len(ids) <= n0/2:
				ops = append(ops, stream.SiteOp{Kind: stream.OpAdd, P: p})
			case k == 1 && len(ids) > n0/2:
				j := ids[rng.Intn(len(ids))]
				ops = append(ops, stream.SiteOp{Kind: stream.OpRemove, ID: j})
				ids = dropID(ids, j)
			default:
				j := ids[rng.Intn(len(ids))]
				ops = append(ops, stream.SiteOp{Kind: stream.OpMove, ID: j, P: p})
				ids = dropID(ids, j)
			}
		}
		gen, applied, err := sw.Apply(ops)
		if err != nil {
			fmt.Fprintln(os.Stderr, "broadcastd: churn:", err)
			continue
		}
		fmt.Printf("broadcastd: generation %d on the air (%d site ops, %d live sites)\n", gen, len(applied), sw.Len())
	}
}

func dropID(ids []int, id int) []int {
	out := make([]int, 0, len(ids))
	for _, j := range ids {
		if j != id {
			out = append(out, j)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "broadcastd:", err)
	os.Exit(1)
}
