// Command broadcastd serves a location-dependent dataset as a live (1, m)
// broadcast over TCP: every connection receives the framed packet stream —
// D-tree index copies interleaved with data buckets — exactly as the paper
// organizes the wireless channel. The channel can be made unreliable with
// the -loss/-burst/-corrupt flags (internal/channel fault models), in which
// case clients recover via the checksum and the next-index pointers. With
// -demo it also connects a client, runs a few queries through the streamed
// access protocol, and reports latency, tuning and recovery counts.
//
// Usage:
//
//	broadcastd [-addr :7343] [-dataset hospital] [-capacity 256]
//	           [-slot-duration 0] [-seed 1]
//	           [-loss 0] [-burst 1] [-corrupt 0] [-demo]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"

	"airindex/internal/channel"
	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/stream"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7343", "listen address")
		name     = flag.String("dataset", "hospital", "uniform, hospital or park")
		n        = flag.Int("n", 1000, "site count (uniform only)")
		capacity = flag.Int("capacity", 256, "packet capacity in bytes")
		slotDur  = flag.Duration("slot-duration", 0, "real-time pacing per slot (0 = full speed)")
		seed     = flag.Int64("seed", 1, "seed for start slots, demo queries and fault models (reproducible runs)")
		loss     = flag.Float64("loss", 0, "frame loss rate per connection, [0, 1)")
		burst    = flag.Float64("burst", 1, "mean loss-burst length in frames; > 1 selects bursty Gilbert-Elliott loss")
		corrupt  = flag.Float64("corrupt", 0, "payload bit-corruption rate of delivered frames, [0, 1)")
		demo     = flag.Bool("demo", false, "run a demo client against the server and exit")
	)
	flag.Parse()

	var ds dataset.Dataset
	switch strings.ToLower(*name) {
	case "uniform":
		ds = dataset.Uniform(*n, 1000)
	case "hospital":
		ds = dataset.Hospital()
	case "park":
		ds = dataset.Park()
	default:
		fatal(fmt.Errorf("unknown dataset %q", *name))
	}
	sub, err := ds.Subdivision()
	if err != nil {
		fatal(err)
	}
	prog, err := stream.NewDTreeProgram(sub, *capacity, 0)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv, err := stream.NewServer(ln, prog)
	if err != nil {
		fatal(err)
	}
	srv.SlotDuration = *slotDur
	rng := rand.New(rand.NewSource(*seed))
	cycle := prog.Sched.CycleLen()
	srv.StartSlot = func() int { return rng.Intn(cycle) }

	spec := channel.Spec{Loss: *loss, Burst: *burst, Corrupt: *corrupt, Seed: *seed}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}
	stats := &channel.Stats{}
	if spec.Enabled() {
		srv.Channel = spec.Factory(stats)
	}

	// Render the broadcast cycle up front so the first connection streams
	// from the shared frame cache instead of paying the build.
	frames, bytes, err := prog.RenderedSize()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("broadcastd: %s, %d instances, %d B packets, index %d packets, m=%d, cycle %d slots, listening on %s\n",
		ds.Name, ds.N(), *capacity, len(prog.IndexPackets), prog.Sched.M, cycle, ln.Addr())
	fmt.Printf("broadcastd: rendered cycle cached: %d frames, %.1f KB\n", frames, float64(bytes)/1024)
	if spec.Enabled() {
		fmt.Printf("broadcastd: unreliable channel: %s loss %.2f%% (burst %.1f), corruption %.2f%%, seed %d\n",
			spec.Model(spec.Seed).Name(), 100**loss, *burst, 100**corrupt, *seed)
	}

	if !*demo {
		if err := srv.Serve(); err != nil {
			fatal(err)
		}
		return
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	client, err := stream.Dial(ln.Addr().String(), *capacity)
	if err != nil {
		fatal(err)
	}

	qrng := rand.New(rand.NewSource(*seed))
	for q := 0; q < 8; q++ {
		p := geom.Pt(qrng.Float64()*10000, qrng.Float64()*10000)
		res, err := client.Query(p)
		if err != nil {
			fatal(err)
		}
		if err := stream.VerifyStampedData(res.Data, *capacity, res.Bucket); err != nil {
			fatal(err)
		}
		fmt.Printf("query (%5.0f,%5.0f) -> instance %4d   latency %6.0f slots, tuned %2d packets (index %d), dozed %d frames",
			p.X, p.Y, res.Bucket, res.Latency, res.TotalTuning(), res.TuneIndex, res.DozedFrames)
		if res.Recoveries > 0 || res.LostSlots > 0 || res.CorruptFrames > 0 {
			fmt.Printf(", recovered %d (lost %d slots, %d corrupt)", res.Recoveries, res.LostSlots, res.CorruptFrames)
		}
		fmt.Println()
	}
	client.Close()
	if spec.Enabled() {
		fmt.Printf("channel: %v\n", stats.Snapshot())
	}
	srv.Close()
	if err := <-serveErr; err != nil {
		fmt.Fprintln(os.Stderr, "broadcastd: serve:", err)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "broadcastd:", err)
	os.Exit(1)
}
