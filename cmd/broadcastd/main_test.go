package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestDebugEndpointEndToEnd builds the real broadcastd binary, runs it in
// demo mode with -debug-addr, and exercises the three debug endpoints
// against the live process: /healthz while the broadcast is on the air,
// /metrics after frames have been transmitted, and /trace after the demo
// client has completed queries. This is the end-to-end proof that the
// observability layer is reachable from outside the process.
func TestDebugEndpointEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "broadcastd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Pace slots at 2ms so the demo stays alive long enough to be probed.
	cmd := exec.Command(bin,
		"-demo", "-dataset", "uniform", "-n", "40", "-capacity", "128",
		"-slot-duration", "2ms", "-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// done is closed (not sent to) once the daemon exits, so every select
	// below and the cleanup defer can all wait on it.
	var waitErr error
	done := make(chan struct{})
	go func() { waitErr = cmd.Wait(); close(done) }()
	defer func() {
		cmd.Process.Kill() //nolint:errcheck
		<-done
	}()

	// Scan the daemon's output for the debug address and the first
	// completed demo query; keep draining afterwards so the child never
	// blocks on a full pipe.
	debugURL := make(chan string, 1)
	queryDone := make(chan struct{})
	var mu sync.Mutex
	var tailBuf strings.Builder
	tail := func() string { mu.Lock(); defer mu.Unlock(); return tailBuf.String() }
	go func() {
		sc := bufio.NewScanner(stdout)
		sawQuery := false
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			tailBuf.WriteString(line + "\n")
			mu.Unlock()
			if _, rest, ok := strings.Cut(line, "debug endpoint on http://"); ok {
				debugURL <- "http://" + strings.Fields(rest)[0]
			}
			if !sawQuery && strings.HasPrefix(line, "query (") {
				sawQuery = true
				close(queryDone)
			}
		}
	}()

	var base string
	select {
	case base = <-debugURL:
	case <-done:
		t.Fatalf("daemon exited before announcing the debug endpoint: %v\n%s", waitErr, tail())
	case <-time.After(30 * time.Second):
		t.Fatalf("no debug endpoint announced\n%s", tail())
	}

	// /healthz: the broadcast clock is live and generation 1 is on the air.
	var health struct {
		Generation  uint32  `json:"generation"`
		CycleLen    int     `json:"cycle_len"`
		Progress    float64 `json:"cycle_progress"`
		ConnsActive int64   `json:"conns_active"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Generation != 1 || health.CycleLen <= 0 {
		t.Fatalf("healthz = %+v", health)
	}
	if health.Progress < 0 || health.Progress >= 1 {
		t.Fatalf("healthz cycle_progress = %v, want [0, 1)", health.Progress)
	}

	// /trace after the demo client finishes its first query.
	select {
	case <-queryDone:
	case <-done:
		t.Fatalf("daemon exited before completing a demo query: %v\n%s", waitErr, tail())
	case <-time.After(60 * time.Second):
		t.Fatalf("no demo query completed\n%s", tail())
	}
	var trace struct {
		Total  uint64 `json:"total"`
		Traces []struct {
			Bucket int `json:"bucket"`
			Steps  []struct {
				Kind string `json:"kind"`
				Slot int    `json:"slot"`
			} `json:"steps"`
		} `json:"traces"`
	}
	getJSON(t, base+"/trace", &trace)
	if trace.Total == 0 || len(trace.Traces) == 0 {
		t.Fatalf("trace endpoint empty after a completed query: %+v", trace)
	}
	if steps := trace.Traces[0].Steps; len(steps) == 0 || steps[0].Kind != "probe" {
		t.Fatalf("trace steps = %+v, want a probe-first sequence", steps)
	}

	// /metrics: frames have gone out to the demo client.
	var metrics map[string]any
	getJSON(t, base+"/metrics", &metrics)
	for _, key := range []string{"frames_written", "bytes_written", "conns_total", "swap_latency_ns"} {
		if _, ok := metrics[key]; !ok {
			t.Fatalf("metrics payload missing %q: %v", key, metrics)
		}
	}
	if fw, _ := metrics["frames_written"].(float64); fw <= 0 {
		t.Fatalf("frames_written = %v, want > 0", metrics["frames_written"])
	}

	// The daemon must then finish its demo run cleanly on its own.
	select {
	case <-done:
		if waitErr != nil {
			t.Fatalf("daemon exited with %v\n%s", waitErr, tail())
		}
	case <-time.After(120 * time.Second):
		t.Fatalf("daemon did not finish the demo run\n%s", tail())
	}
	if !strings.Contains(tail(), "demo: 8 queries") {
		t.Fatalf("demo summary missing from output\n%s", tail())
	}
}

// baseConfig mirrors the flag defaults.
func baseConfig() config {
	return config{
		addr: "127.0.0.1:7343", dataset: "hospital", n: 1000, capacity: 256,
		shards: 1, seed: 1, burst: 1, churnOps: 4,
		writeTO: 30 * time.Second, drainTO: 10 * time.Second,
		ingestQueue: 4096, ingestPolicy: "reject",
		cutMaxOps: 256, cutInterval: 200 * time.Millisecond,
	}
}

// TestValidateConfig pins the flag-validation rules: every nonsensical
// combination is rejected before a listener opens, and the defaults pass.
func TestValidateConfig(t *testing.T) {
	if err := validateConfig(baseConfig()); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*config)
		ok   bool
	}{
		{"sharded", func(c *config) { c.shards = 4 }, true},
		{"churn with seed", func(c *config) { c.churn = time.Second; c.seedSet = true }, true},
		{"lossy", func(c *config) { c.loss = 0.2; c.burst = 3; c.corrupt = 0.01 }, true},
		{"snapshot restore", func(c *config) { c.snapshot = "index.dtsnap" }, true},
		{"snapshot with churn", func(c *config) { c.snapshot = "index.dtsnap"; c.churn = time.Second; c.seedSet = true }, false},
		{"snapshot with shards", func(c *config) { c.snapshot = "index.dtsnap"; c.shards = 3 }, false},
		{"snapshot dir sharded", func(c *config) { c.snapDir = "snaps"; c.shards = 3 }, true},
		{"snapshot dir single channel", func(c *config) { c.snapDir = "snaps" }, false},
		{"snapshot dir with churn", func(c *config) { c.snapDir = "snaps"; c.shards = 3; c.churn = time.Second; c.seedSet = true }, false},
		{"snapshot dir with snapshot", func(c *config) { c.snapDir = "snaps"; c.snapshot = "index.dtsnap"; c.shards = 3 }, false},
		{"zero shards", func(c *config) { c.shards = 0 }, false},
		{"negative shards", func(c *config) { c.shards = -2 }, false},
		{"churn without seed", func(c *config) { c.churn = time.Second }, false},
		{"negative churn", func(c *config) { c.churn = -time.Second; c.seedSet = true }, false},
		{"loss one", func(c *config) { c.loss = 1 }, false},
		{"negative loss", func(c *config) { c.loss = -0.1 }, false},
		{"corrupt one", func(c *config) { c.corrupt = 1 }, false},
		{"sub-frame burst", func(c *config) { c.burst = 0.5 }, false},
		{"zero churn ops", func(c *config) { c.churnOps = 0 }, false},
		{"tiny capacity", func(c *config) { c.capacity = 16 }, false},
		{"no sites", func(c *config) { c.n = 0 }, false},
		{"unknown dataset", func(c *config) { c.dataset = "venus" }, false},
		{"negative slot duration", func(c *config) { c.slotDur = -time.Millisecond }, false},
		{"negative write timeout", func(c *config) { c.writeTO = -time.Second }, false},
		{"zero drain budget", func(c *config) { c.drainTO = 0 }, false},
		{"ingest", func(c *config) { c.ingestAddr = "127.0.0.1:0"; c.seedSet = true }, true},
		{"ingest sharded", func(c *config) { c.ingestAddr = "127.0.0.1:0"; c.seedSet = true; c.shards = 3 }, true},
		{"ingest tuned", func(c *config) {
			c.ingestAddr = "127.0.0.1:0"
			c.seedSet = true
			c.ingestPolicy = "drop-move"
			c.ingestTuned = []string{"ingest-policy"}
		}, true},
		{"ingest with snapshot", func(c *config) { c.ingestAddr = "127.0.0.1:0"; c.seedSet = true; c.snapshot = "index.dtsnap" }, false},
		{"ingest with snapshot dir", func(c *config) {
			c.ingestAddr = "127.0.0.1:0"
			c.seedSet = true
			c.shards = 3
			c.snapDir = "snaps"
		}, false},
		{"ingest without seed", func(c *config) { c.ingestAddr = "127.0.0.1:0" }, false},
		{"ingest tuning without endpoint", func(c *config) { c.ingestTuned = []string{"cut-interval"}; c.seedSet = true }, false},
		{"zero ingest queue", func(c *config) { c.ingestAddr = "127.0.0.1:0"; c.seedSet = true; c.ingestQueue = 0 }, false},
		{"zero cut max ops", func(c *config) { c.ingestAddr = "127.0.0.1:0"; c.seedSet = true; c.cutMaxOps = 0 }, false},
		{"zero cut interval", func(c *config) { c.ingestAddr = "127.0.0.1:0"; c.seedSet = true; c.cutInterval = 0 }, false},
		{"unknown ingest policy", func(c *config) { c.ingestAddr = "127.0.0.1:0"; c.seedSet = true; c.ingestPolicy = "yolo" }, false},
		{"adjacency", func(c *config) { c.adjacency = true }, true},
		{"adjacency with churn", func(c *config) { c.adjacency = true; c.churn = time.Second; c.seedSet = true }, true},
		{"adjacency sharded", func(c *config) { c.adjacency = true; c.shards = 3 }, true},
		{"adjacency with snapshot", func(c *config) { c.adjacency = true; c.snapshot = "index.dtsnap" }, false},
		{"adjacency with snapshot dir", func(c *config) { c.adjacency = true; c.snapDir = "snaps"; c.shards = 3 }, false},
	}
	for _, tc := range cases {
		cfg := baseConfig()
		tc.mut(&cfg)
		err := validateConfig(cfg)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpectedly rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestShardAddr pins the port-derivation rule for sharded listeners.
func TestShardAddr(t *testing.T) {
	for _, tc := range []struct {
		base string
		ch   int
		want string
	}{
		{"127.0.0.1:7343", 0, "127.0.0.1:7343"},
		{"127.0.0.1:7343", 3, "127.0.0.1:7346"},
		{"127.0.0.1:0", 2, "127.0.0.1:0"},
		{":9000", 1, ":9001"},
	} {
		if got := shardAddr(tc.base, tc.ch); got != tc.want {
			t.Errorf("shardAddr(%q, %d) = %q, want %q", tc.base, tc.ch, got, tc.want)
		}
	}
}

// TestInvalidFlagsExitCode runs the real binary with a rejected flag
// combination and expects a usage error (exit code 2) before any listener
// opens.
func TestInvalidFlagsExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	out, err := exec.Command(bin, "-churn", "1s", "-addr", "127.0.0.1:0").CombinedOutput()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 2 {
		t.Fatalf("want exit code 2, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "invalid flags") || !strings.Contains(string(out), "-seed") {
		t.Fatalf("usage error missing:\n%s", out)
	}
}

// TestShardedDemoEndToEnd runs the daemon in -shards 3 -demo mode against
// a lossy channel and checks the demo client resolved queries across
// shards with the directory prefix charged on every query.
func TestShardedDemoEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	out, err := exec.Command(bin,
		"-demo", "-shards", "3", "-dataset", "uniform", "-n", "90", "-capacity", "128",
		"-loss", "0.02", "-addr", "127.0.0.1:0").CombinedOutput()
	if err != nil {
		t.Fatalf("daemon: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"3 shards", "directory 1 packet(s)",
		"shard 0 on", "shard 1 on", "shard 2 on",
		"demo: 8 queries",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "hop(s)") {
		t.Fatalf("no hop accounting in demo output:\n%s", s)
	}
}

// TestAdjacencyDemoEndToEnd runs the daemon with -adjacency in both the
// single-channel and sharded shapes: the appendix must be announced on the
// air and the demo point queries must still resolve — the one-shot path
// skips the appendix via the length named in packet 0.
func TestAdjacencyDemoEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	out, err := exec.Command(bin,
		"-demo", "-adjacency", "-dataset", "uniform", "-n", "120", "-capacity", "128",
		"-addr", "127.0.0.1:0").CombinedOutput()
	if err != nil {
		t.Fatalf("single-channel daemon: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"adjacency appendix on air", "packet(s) ahead of each index copy", "demo: 8 queries"} {
		if !strings.Contains(s, want) {
			t.Fatalf("single-channel output missing %q:\n%s", want, s)
		}
	}
	out, err = exec.Command(bin,
		"-demo", "-adjacency", "-shards", "3", "-dataset", "uniform", "-n", "120", "-capacity", "128",
		"-addr", "127.0.0.1:0").CombinedOutput()
	if err != nil {
		t.Fatalf("sharded daemon: %v\n%s", err, out)
	}
	s = string(out)
	for _, want := range []string{"adjacency appendix on air behind every channel directory", "demo: 8 queries"} {
		if !strings.Contains(s, want) {
			t.Fatalf("sharded output missing %q:\n%s", want, s)
		}
	}
}

// TestShardedSnapshotRestartEndToEnd runs the daemon twice with
// -snapshot-dir: the first run builds the fabric and writes one snapshot
// per shard, the second restores from them zero-parse. Both runs must
// resolve the same demo queries, proving the restored shards broadcast the
// same index.
func TestShardedSnapshotRestartEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	snapDir := filepath.Join(t.TempDir(), "snaps")
	run := func() string {
		out, err := exec.Command(bin,
			"-demo", "-shards", "2", "-dataset", "uniform", "-n", "80", "-capacity", "128",
			"-snapshot-dir", snapDir, "-addr", "127.0.0.1:0").CombinedOutput()
		if err != nil {
			t.Fatalf("daemon: %v\n%s", err, out)
		}
		return string(out)
	}

	first := run()
	if !strings.Contains(first, "wrote 2 shard snapshots to "+snapDir) {
		t.Fatalf("first run did not write snapshots:\n%s", first)
	}
	for ch := 0; ch < 2; ch++ {
		if _, err := os.Stat(filepath.Join(snapDir, fmt.Sprintf("shard%d.dtsnap", ch))); err != nil {
			t.Fatalf("shard %d snapshot missing after first run: %v", ch, err)
		}
	}

	second := run()
	if !strings.Contains(second, "restored 2 shards from "+snapDir) {
		t.Fatalf("second run did not restore from snapshots:\n%s", second)
	}
	// Same seed, same dataset: the demo queries and their answers must
	// match line for line across the rebuild/restore boundary.
	queries := func(s string) []string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "query (") {
				out = append(out, line)
			}
		}
		return out
	}
	q1, q2 := queries(first), queries(second)
	if len(q1) != 8 || len(q2) != 8 {
		t.Fatalf("expected 8 demo queries per run, got %d and %d", len(q1), len(q2))
	}
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Fatalf("query %d diverged after restore:\nbuilt:    %s\nrestored: %s", i, q1[i], q2[i])
		}
	}
}

// TestIngestEndToEnd runs the daemon with -ingest-addr, POSTs a live site
// batch over HTTP, waits for the pipeline to cut a new generation onto the
// air, and then SIGTERMs the process expecting the ingest queue to drain
// before the broadcast goes away.
func TestIngestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	t.Run("single", func(t *testing.T) { ingestEndToEnd(t, bin) })
	t.Run("sharded", func(t *testing.T) { ingestEndToEnd(t, bin, "-shards", "3") })
}

func ingestEndToEnd(t *testing.T, bin string, extra ...string) {
	args := []string{
		"-dataset", "uniform", "-n", "40", "-capacity", "128", "-seed", "7",
		"-slot-duration", "2ms", "-addr", "127.0.0.1:0",
		"-ingest-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0",
		"-cut-interval", "20ms", "-cut-max-ops", "8",
	}
	cmd := exec.Command(bin, append(args, extra...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	ingestURL := make(chan string, 1)
	debugURL := make(chan string, 1)
	var mu sync.Mutex
	var tailBuf strings.Builder
	tail := func() string { mu.Lock(); defer mu.Unlock(); return tailBuf.String() }
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			tailBuf.WriteString(line + "\n")
			mu.Unlock()
			if _, rest, ok := strings.Cut(line, "ingest endpoint on http://"); ok {
				ingestURL <- "http://" + strings.Fields(rest)[0]
			}
			if _, rest, ok := strings.Cut(line, "debug endpoint on http://"); ok {
				debugURL <- "http://" + strings.Fields(rest)[0]
			}
		}
	}()
	// Reap only after the scanner hits EOF: Wait closes the stdout pipe
	// and would otherwise race the scanner out of the daemon's last lines
	// (the drain messages this test exists to observe).
	var waitErr error
	done := make(chan struct{})
	go func() { <-scanDone; waitErr = cmd.Wait(); close(done) }()
	defer func() {
		cmd.Process.Kill() //nolint:errcheck
		<-done
	}()
	await := func(ch chan string, what string) string {
		select {
		case u := <-ch:
			return u
		case <-done:
			t.Fatalf("daemon exited before announcing the %s endpoint: %v\n%s", what, waitErr, tail())
		case <-time.After(30 * time.Second):
			t.Fatalf("no %s endpoint announced\n%s", what, tail())
		}
		return ""
	}
	ingestBase := await(ingestURL, "ingest")
	debugBase := await(debugURL, "debug")

	// A live batch: one tagged add, a move addressed by its provisional
	// handle, and an anonymous add.
	body := `{"ops":[{"op":"add","id":-1,"x":5000,"y":5000},{"op":"move","id":-1,"x":120,"y":80},{"op":"add","x":9000,"y":1000}]}`
	resp, err := http.Post(ingestBase+"/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /ingest: %v\n%s", err, tail())
	}
	var acc struct {
		Accepted int `json:"accepted"`
	}
	decodeErr := json.NewDecoder(resp.Body).Decode(&acc)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || decodeErr != nil || acc.Accepted != 3 {
		t.Fatalf("POST /ingest = %d accepted %d (decode %v), want 202 accepted 3\n%s",
			resp.StatusCode, acc.Accepted, decodeErr, tail())
	}

	// Malformed batches are refused at the door, not enqueued.
	resp, err = http.Post(ingestBase+"/ingest", "application/json", strings.NewReader(`{"ops":[{"op":"warp"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed POST = %d, want 400", resp.StatusCode)
	}

	// The batch must reach the air: a cut is counted in the shared metrics
	// registry and the on-air generation moves past the seed build.
	// In single-channel mode /healthz reports the server's health directly;
	// in sharded mode it nests one health object per shard, and an ingest
	// cut republishes only the shards the batch touched — any generation
	// moving past the seed build proves the cut reached the air.
	maxGen := func(v map[string]any) float64 {
		if g, ok := v["generation"].(float64); ok {
			return g
		}
		var best float64
		for _, sub := range v {
			if m, ok := sub.(map[string]any); ok {
				if g, ok := m["generation"].(float64); ok && g > best {
					best = g
				}
			}
		}
		return best
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var metrics map[string]any
		getJSON(t, debugBase+"/metrics", &metrics)
		cuts, _ := metrics["ingest_cuts"].(float64)
		var health map[string]any
		getJSON(t, debugBase+"/healthz", &health)
		if gen := maxGen(health); cuts >= 1 && gen >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no ingest cut on the air: cuts=%v health=%v\n%s", cuts, health, tail())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Graceful shutdown drains the ingest queue before the servers stop.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM\n%s", tail())
	}
	if waitErr != nil {
		t.Fatalf("daemon exited with %v\n%s", waitErr, tail())
	}
	out := tail()
	for _, want := range []string{"broadcastd: ingest queue drained", "broadcastd: stopped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "broadcastd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// getJSON fetches url and decodes the JSON body, retrying briefly — the
// endpoint may be a few milliseconds from accepting connections.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				err = rerr
			} else if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("%s: status %s: %s", url, resp.Status, body)
			} else if err = json.Unmarshal(body, v); err == nil {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s: %v", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
