package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDebugEndpointEndToEnd builds the real broadcastd binary, runs it in
// demo mode with -debug-addr, and exercises the three debug endpoints
// against the live process: /healthz while the broadcast is on the air,
// /metrics after frames have been transmitted, and /trace after the demo
// client has completed queries. This is the end-to-end proof that the
// observability layer is reachable from outside the process.
func TestDebugEndpointEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "broadcastd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Pace slots at 2ms so the demo stays alive long enough to be probed.
	cmd := exec.Command(bin,
		"-demo", "-dataset", "uniform", "-n", "40", "-capacity", "128",
		"-slot-duration", "2ms", "-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// done is closed (not sent to) once the daemon exits, so every select
	// below and the cleanup defer can all wait on it.
	var waitErr error
	done := make(chan struct{})
	go func() { waitErr = cmd.Wait(); close(done) }()
	defer func() {
		cmd.Process.Kill() //nolint:errcheck
		<-done
	}()

	// Scan the daemon's output for the debug address and the first
	// completed demo query; keep draining afterwards so the child never
	// blocks on a full pipe.
	debugURL := make(chan string, 1)
	queryDone := make(chan struct{})
	var mu sync.Mutex
	var tailBuf strings.Builder
	tail := func() string { mu.Lock(); defer mu.Unlock(); return tailBuf.String() }
	go func() {
		sc := bufio.NewScanner(stdout)
		sawQuery := false
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			tailBuf.WriteString(line + "\n")
			mu.Unlock()
			if _, rest, ok := strings.Cut(line, "debug endpoint on http://"); ok {
				debugURL <- "http://" + strings.Fields(rest)[0]
			}
			if !sawQuery && strings.HasPrefix(line, "query (") {
				sawQuery = true
				close(queryDone)
			}
		}
	}()

	var base string
	select {
	case base = <-debugURL:
	case <-done:
		t.Fatalf("daemon exited before announcing the debug endpoint: %v\n%s", waitErr, tail())
	case <-time.After(30 * time.Second):
		t.Fatalf("no debug endpoint announced\n%s", tail())
	}

	// /healthz: the broadcast clock is live and generation 1 is on the air.
	var health struct {
		Generation  uint32  `json:"generation"`
		CycleLen    int     `json:"cycle_len"`
		Progress    float64 `json:"cycle_progress"`
		ConnsActive int64   `json:"conns_active"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Generation != 1 || health.CycleLen <= 0 {
		t.Fatalf("healthz = %+v", health)
	}
	if health.Progress < 0 || health.Progress >= 1 {
		t.Fatalf("healthz cycle_progress = %v, want [0, 1)", health.Progress)
	}

	// /trace after the demo client finishes its first query.
	select {
	case <-queryDone:
	case <-done:
		t.Fatalf("daemon exited before completing a demo query: %v\n%s", waitErr, tail())
	case <-time.After(60 * time.Second):
		t.Fatalf("no demo query completed\n%s", tail())
	}
	var trace struct {
		Total  uint64 `json:"total"`
		Traces []struct {
			Bucket int `json:"bucket"`
			Steps  []struct {
				Kind string `json:"kind"`
				Slot int    `json:"slot"`
			} `json:"steps"`
		} `json:"traces"`
	}
	getJSON(t, base+"/trace", &trace)
	if trace.Total == 0 || len(trace.Traces) == 0 {
		t.Fatalf("trace endpoint empty after a completed query: %+v", trace)
	}
	if steps := trace.Traces[0].Steps; len(steps) == 0 || steps[0].Kind != "probe" {
		t.Fatalf("trace steps = %+v, want a probe-first sequence", steps)
	}

	// /metrics: frames have gone out to the demo client.
	var metrics map[string]any
	getJSON(t, base+"/metrics", &metrics)
	for _, key := range []string{"frames_written", "bytes_written", "conns_total", "swap_latency_ns"} {
		if _, ok := metrics[key]; !ok {
			t.Fatalf("metrics payload missing %q: %v", key, metrics)
		}
	}
	if fw, _ := metrics["frames_written"].(float64); fw <= 0 {
		t.Fatalf("frames_written = %v, want > 0", metrics["frames_written"])
	}

	// The daemon must then finish its demo run cleanly on its own.
	select {
	case <-done:
		if waitErr != nil {
			t.Fatalf("daemon exited with %v\n%s", waitErr, tail())
		}
	case <-time.After(120 * time.Second):
		t.Fatalf("daemon did not finish the demo run\n%s", tail())
	}
	if !strings.Contains(tail(), "demo: 8 queries") {
		t.Fatalf("demo summary missing from output\n%s", tail())
	}
}

// getJSON fetches url and decodes the JSON body, retrying briefly — the
// endpoint may be a few milliseconds from accepting connections.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				err = rerr
			} else if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("%s: status %s: %s", url, resp.Status, body)
			} else if err = json.Unmarshal(body, v); err == nil {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s: %v", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
