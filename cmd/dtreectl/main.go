// Command dtreectl builds a D-tree over a dataset and inspects it: summary
// statistics, a per-level profile, the packet layout for a given capacity,
// and interactive point queries. Two subcommands manage flat-arena
// snapshots: `snapshot` builds the index and writes the zero-parse slab
// broadcastd restarts from, and `restore` loads a slab back, verifies it,
// and answers point queries from it — proving the file serves without a
// rebuild.
//
// Usage:
//
//	dtreectl -dataset uniform [-n 1000] [-capacity 512] [-levels] [-query x,y]...
//	dtreectl snapshot -out index.dtsnap [-dataset uniform] [-n 1000] [-capacity 512]
//	dtreectl restore -in index.dtsnap [-query x,y]...
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"airindex/internal/core"
	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/wire"
)

type queryList []geom.Point

func (q *queryList) String() string { return fmt.Sprint(*q) }

func (q *queryList) Set(s string) error {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return fmt.Errorf("want x,y")
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return err
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return err
	}
	*q = append(*q, geom.Pt(x, y))
	return nil
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "snapshot":
			runSnapshot(os.Args[2:])
			return
		case "restore":
			runRestore(os.Args[2:])
			return
		}
	}
	runInspect(os.Args[1:])
}

// pickDataset resolves the shared -dataset/-n/-seed triple.
func pickDataset(name string, n int, seed int64) dataset.Dataset {
	switch strings.ToLower(name) {
	case "uniform":
		return dataset.Uniform(n, seed)
	case "hospital":
		return dataset.Hospital()
	case "park":
		return dataset.Park()
	}
	fatal(fmt.Errorf("unknown dataset %q (want uniform, hospital or park)", name))
	panic("unreachable")
}

// buildFlat runs the full construction pipeline — Voronoi subdivision,
// D-tree build, paging, flattening — and returns the serving arena.
func buildFlat(ds dataset.Dataset, capacity int) (*core.Tree, *core.Paged, *core.FlatPaged) {
	sub, err := ds.Subdivision()
	if err != nil {
		fatal(err)
	}
	tree, err := core.Build(sub)
	if err != nil {
		fatal(err)
	}
	paged, err := tree.Page(wire.DTreeParams(capacity))
	if err != nil {
		fatal(err)
	}
	return tree, paged, paged.Flatten()
}

// runInspect is the classic build-and-inspect mode.
func runInspect(args []string) {
	fs := flag.NewFlagSet("dtreectl", flag.ExitOnError)
	var queries queryList
	var (
		name     = fs.String("dataset", "uniform", "uniform, hospital or park")
		n        = fs.Int("n", 1000, "site count (uniform only)")
		seed     = fs.Int64("seed", 1000, "seed (uniform only)")
		capacity = fs.Int("capacity", 512, "packet capacity in bytes")
		levels   = fs.Bool("levels", false, "print a per-level profile")
	)
	fs.Var(&queries, "query", "point query x,y (repeatable)")
	fs.Parse(args)

	ds := pickDataset(*name, *n, *seed)
	tree, paged, _ := buildFlat(ds, *capacity)
	st := tree.Stats()
	fmt.Printf("%s: %d regions\n", ds.Name, tree.Sub.N())
	fmt.Printf("D-tree: %d nodes, height %d, %d partition points total (max %d in one node)\n",
		st.Nodes, st.Height, st.PartitionPoints, st.MaxNodePoints)
	fmt.Printf("paged at %d B/packet: %d packets, %d bytes occupied (%.1f%% utilization)\n",
		*capacity, paged.IndexPackets(), paged.Layout.SizeBytes(), 100*paged.Layout.Utilization())

	if *levels {
		printLevels(tree, wire.DTreeParams(*capacity))
	}
	for _, q := range queries {
		id, trace := paged.Locate(q)
		fmt.Printf("query (%g, %g) -> region %d (site %v), %d packet accesses: %v\n",
			q.X, q.Y, id, ds.Sites[id], len(trace), trace)
	}
}

// runSnapshot builds the index and writes the flat-arena snapshot slab.
func runSnapshot(args []string) {
	fs := flag.NewFlagSet("dtreectl snapshot", flag.ExitOnError)
	var (
		name     = fs.String("dataset", "uniform", "uniform, hospital or park")
		n        = fs.Int("n", 1000, "site count (uniform only)")
		seed     = fs.Int64("seed", 1000, "seed (uniform only)")
		capacity = fs.Int("capacity", 512, "packet capacity in bytes")
		out      = fs.String("out", "", "snapshot file to write (required)")
	)
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("snapshot: -out is required"))
	}
	ds := pickDataset(*name, *n, *seed)
	_, _, fp := buildFlat(ds, *capacity)
	if err := fp.WriteSnapshotFile(*out); err != nil {
		fatal(err)
	}
	slab := len(fp.Snapshot())
	fmt.Printf("%s: %d regions, %d B packets, index %d packets\n",
		ds.Name, fp.Flat.N, *capacity, fp.IndexPackets())
	fmt.Printf("snapshot written to %s: %d bytes (arena %d B)\n", *out, slab, fp.SizeBytes())
}

// runRestore loads a snapshot slab, re-encodes its packets (exercising the
// whole serving path) and answers any -query points from the restored
// arena.
func runRestore(args []string) {
	fs := flag.NewFlagSet("dtreectl restore", flag.ExitOnError)
	var queries queryList
	in := fs.String("in", "", "snapshot file to load (required)")
	fs.Var(&queries, "query", "point query x,y (repeatable)")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("restore: -in is required"))
	}
	fp, err := core.LoadSnapshotFile(*in)
	if err != nil {
		fatal(err)
	}
	pkts, err := fp.EncodePackets()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("restored %s: %d regions, %d B packets, index %d packets, arena %d B — checksum and layout verified\n",
		*in, fp.Flat.N, fp.Params.PacketCapacity, len(pkts), fp.SizeBytes())
	var trace []int
	for _, q := range queries {
		var id int
		id, trace = fp.LocateInto(q, trace[:0])
		fmt.Printf("query (%g, %g) -> region %d, %d packet accesses: %v\n",
			q.X, q.Y, id, len(trace), trace)
	}
}

func printLevels(tree *core.Tree, params wire.Params) {
	type agg struct{ n, pts, bytes int }
	levels := map[int]*agg{}
	deepest := 0
	var walk func(c core.ChildRef, lvl int)
	walk = func(c core.ChildRef, lvl int) {
		if c.IsData() {
			return
		}
		a := levels[lvl]
		if a == nil {
			a = &agg{}
			levels[lvl] = a
		}
		a.n++
		a.pts += c.Node.PartitionPoints()
		a.bytes += core.NodeSize(c.Node, params)
		if lvl > deepest {
			deepest = lvl
		}
		walk(c.Node.Left, lvl+1)
		walk(c.Node.Right, lvl+1)
	}
	walk(core.ChildRef{Node: tree.Root}, 0)
	fmt.Println("level   nodes   avg points   avg bytes")
	for l := 0; l <= deepest; l++ {
		a := levels[l]
		fmt.Printf("%5d %7d %12.1f %11.1f\n", l, a.n, float64(a.pts)/float64(a.n), float64(a.bytes)/float64(a.n))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtreectl:", err)
	os.Exit(1)
}
