// Command dtreectl builds a D-tree over a dataset and inspects it: summary
// statistics, a per-level profile, the packet layout for a given capacity,
// and interactive point queries.
//
// Usage:
//
//	dtreectl -dataset uniform [-n 1000] [-capacity 512] [-levels] [-query x,y]...
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"airindex/internal/core"
	"airindex/internal/dataset"
	"airindex/internal/geom"
	"airindex/internal/wire"
)

type queryList []geom.Point

func (q *queryList) String() string { return fmt.Sprint(*q) }

func (q *queryList) Set(s string) error {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return fmt.Errorf("want x,y")
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return err
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return err
	}
	*q = append(*q, geom.Pt(x, y))
	return nil
}

func main() {
	var queries queryList
	var (
		name     = flag.String("dataset", "uniform", "uniform, hospital or park")
		n        = flag.Int("n", 1000, "site count (uniform only)")
		seed     = flag.Int64("seed", 1000, "seed (uniform only)")
		capacity = flag.Int("capacity", 512, "packet capacity in bytes")
		levels   = flag.Bool("levels", false, "print a per-level profile")
	)
	flag.Var(&queries, "query", "point query x,y (repeatable)")
	flag.Parse()

	var ds dataset.Dataset
	switch strings.ToLower(*name) {
	case "uniform":
		ds = dataset.Uniform(*n, *seed)
	case "hospital":
		ds = dataset.Hospital()
	case "park":
		ds = dataset.Park()
	default:
		fatal(fmt.Errorf("unknown dataset %q", *name))
	}
	sub, err := ds.Subdivision()
	if err != nil {
		fatal(err)
	}
	tree, err := core.Build(sub)
	if err != nil {
		fatal(err)
	}
	st := tree.Stats()
	fmt.Printf("%s: %d regions\n", ds.Name, sub.N())
	fmt.Printf("D-tree: %d nodes, height %d, %d partition points total (max %d in one node)\n",
		st.Nodes, st.Height, st.PartitionPoints, st.MaxNodePoints)

	params := wire.DTreeParams(*capacity)
	paged, err := tree.Page(params)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("paged at %d B/packet: %d packets, %d bytes occupied (%.1f%% utilization)\n",
		*capacity, paged.IndexPackets(), paged.Layout.SizeBytes(), 100*paged.Layout.Utilization())

	if *levels {
		printLevels(tree, params)
	}
	for _, q := range queries {
		id, trace := paged.Locate(q)
		fmt.Printf("query (%g, %g) -> region %d (site %v), %d packet accesses: %v\n",
			q.X, q.Y, id, ds.Sites[id], len(trace), trace)
	}
}

func printLevels(tree *core.Tree, params wire.Params) {
	type agg struct{ n, pts, bytes int }
	levels := map[int]*agg{}
	deepest := 0
	var walk func(c core.ChildRef, lvl int)
	walk = func(c core.ChildRef, lvl int) {
		if c.IsData() {
			return
		}
		a := levels[lvl]
		if a == nil {
			a = &agg{}
			levels[lvl] = a
		}
		a.n++
		a.pts += c.Node.PartitionPoints()
		a.bytes += core.NodeSize(c.Node, params)
		if lvl > deepest {
			deepest = lvl
		}
		walk(c.Node.Left, lvl+1)
		walk(c.Node.Right, lvl+1)
	}
	walk(core.ChildRef{Node: tree.Root}, 0)
	fmt.Println("level   nodes   avg points   avg bytes")
	for l := 0; l <= deepest; l++ {
		a := levels[l]
		fmt.Printf("%5d %7d %12.1f %11.1f\n", l, a.n, float64(a.pts)/float64(a.n), float64(a.bytes)/float64(a.n))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtreectl:", err)
	os.Exit(1)
}
