// Command datasetgen emits the evaluation datasets (Figure 9): the site
// coordinates and, optionally, the Voronoi valid scopes, as CSV for
// external plotting. The large-* presets generate the reproducible big
// datasets the build benchmarks and manual profiling use.
//
// Usage:
//
//	datasetgen -dataset uniform|hospital|park|large-uniform|large-clustered
//	           [-scopes] [-n 1000] [-seed 1000]
//
// -n scales the uniform and large-* datasets (0 keeps the preset default:
// 1000 for uniform, 50000 for large-*); hospital and park are fixed at the
// paper's cardinalities.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"airindex/internal/dataset"
)

func main() {
	var (
		name   = flag.String("dataset", "uniform", "uniform, hospital, park, large-uniform or large-clustered")
		scopes = flag.Bool("scopes", false, "emit Voronoi valid-scope polygons instead of sites")
		n      = flag.Int("n", 0, "site count for uniform and large-* (0 = preset default)")
		seed   = flag.Int64("seed", 1000, "seed (uniform only; large-* presets pin their own)")
	)
	flag.Parse()

	var ds dataset.Dataset
	switch strings.ToLower(*name) {
	case "uniform":
		count := *n
		if count <= 0 {
			count = 1000
		}
		ds = dataset.Uniform(count, *seed)
	case "hospital":
		ds = dataset.Hospital()
	case "park":
		ds = dataset.Park()
	case "large-uniform":
		ds = dataset.LargeUniform(*n)
	case "large-clustered":
		ds = dataset.LargeClustered(*n)
	default:
		fmt.Fprintf(os.Stderr, "datasetgen: unknown dataset %q\n", *name)
		os.Exit(1)
	}

	if !*scopes {
		fmt.Println("site,x,y")
		for i, p := range ds.Sites {
			fmt.Printf("%d,%.4f,%.4f\n", i, p.X, p.Y)
		}
		return
	}
	sub, err := ds.Subdivision()
	if err != nil {
		fmt.Fprintln(os.Stderr, "datasetgen:", err)
		os.Exit(1)
	}
	fmt.Println("region,vertex,x,y")
	for i := range sub.Regions {
		for j, p := range sub.Regions[i].Poly {
			fmt.Printf("%d,%d,%.4f,%.4f\n", i, j, p.X, p.Y)
		}
	}
}
