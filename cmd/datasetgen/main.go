// Command datasetgen emits the evaluation datasets (Figure 9): the site
// coordinates and, optionally, the Voronoi valid scopes, as CSV for
// external plotting.
//
// Usage:
//
//	datasetgen -dataset uniform|hospital|park [-scopes] [-n 1000] [-seed 1000]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"airindex/internal/dataset"
)

func main() {
	var (
		name   = flag.String("dataset", "uniform", "uniform, hospital or park")
		scopes = flag.Bool("scopes", false, "emit Voronoi valid-scope polygons instead of sites")
		n      = flag.Int("n", 1000, "site count (uniform only)")
		seed   = flag.Int64("seed", 1000, "seed (uniform only)")
	)
	flag.Parse()

	var ds dataset.Dataset
	switch strings.ToLower(*name) {
	case "uniform":
		ds = dataset.Uniform(*n, *seed)
	case "hospital":
		ds = dataset.Hospital()
	case "park":
		ds = dataset.Park()
	default:
		fmt.Fprintf(os.Stderr, "datasetgen: unknown dataset %q\n", *name)
		os.Exit(1)
	}

	if !*scopes {
		fmt.Println("site,x,y")
		for i, p := range ds.Sites {
			fmt.Printf("%d,%.4f,%.4f\n", i, p.X, p.Y)
		}
		return
	}
	sub, err := ds.Subdivision()
	if err != nil {
		fmt.Fprintln(os.Stderr, "datasetgen:", err)
		os.Exit(1)
	}
	fmt.Println("region,vertex,x,y")
	for i := range sub.Regions {
		for j, p := range sub.Regions[i].Poly {
			fmt.Printf("%d,%d,%.4f,%.4f\n", i, j, p.X, p.Y)
		}
	}
}
