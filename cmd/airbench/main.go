// Command airbench regenerates the paper's evaluation (Figures 10-13):
// expected access latency, index size, tuning time, and indexing efficiency
// of the D-tree against the trian-tree, trap-tree and R*-tree over the
// UNIFORM, HOSPITAL and PARK datasets.
//
// Usage:
//
//	airbench [-figure 10|11|12|13|all|ablation|dist|skew|cache|loss|churn|ingest|shards]
//	         [-queries n] [-capacities 64,128,...] [-datasets uniform,hospital,park]
//	         [-theta 1.0] [-queries-by-area] [-csv] [-seed n] [-loss-queries n]
//	         [-shardcounts 1,2,4,8] [-sites 50000] [-baselines]
//	         [-workers n] [-buildworkers n] [-cpuprofile f] [-memprofile f]
//
// Besides the paper's figures, the extension experiments are available as
// figures: "ablation" (D-tree design choices), "dist" ((1,m) vs distributed
// indexing), "skew" (balanced vs access-weighted D-tree under Zipf access),
// "cache" (client-side pinning of hot index packets), "loss" (latency and
// tuning of the streamed access protocol under unreliable channels —
// Bernoulli, Gilbert-Elliott and bit-corruption fault models, run against
// the live frame stream at the first listed capacity), "churn" (latency
// and tuning penalty of hot program swaps while sites are added, removed
// and moved under live queries), "ingest" (the asynchronous bounded-queue
// update pipeline: sustained ops/sec, coalescing fold factor, op-to-on-air
// latency and shed counts under streamed offered load with live verified
// queries), and "shards" (the multi-channel sharded
// fabric: access latency and tuning vs channel count at the first listed
// capacity, over a large uniform dataset of -sites sites).
//
// The serial trian-tree and trap-tree baseline builders are opt-in via
// -baselines: without it the classic figures compare only the D-tree and
// R*-tree, and large-N sweeps skip the two builders that dominate build
// time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"airindex/internal/dataset"
	"airindex/internal/experiment"
	"airindex/internal/stream"
)

func main() {
	var (
		figure     = flag.String("figure", "all", "figure to regenerate: 10, 11, 12, 13, all, ablation, skew or cache")
		theta      = flag.Float64("theta", 1.0, "Zipf skew parameter (with -figure skew)")
		queries    = flag.Int("queries", 100000, "Monte Carlo queries per cell (paper: 1000000)")
		capacities = flag.String("capacities", "64,128,256,512,1024,2048", "packet capacities in bytes")
		datasets   = flag.String("datasets", "uniform,hospital,park", "datasets to evaluate")
		byArea     = flag.Bool("queries-by-area", false, "sample queries uniformly by area instead of by region")
		csvOut     = flag.Bool("csv", false, "emit raw measurements as CSV")
		jsonOut    = flag.Bool("json", false, "emit raw measurements as JSON; loss/churn cells carry per-cell observability snapshots")
		seed       = flag.Int64("seed", 42, "random seed")
		lossQ      = flag.Int("loss-queries", 200, "streamed queries per cell of the loss/churn/ingest sweeps (with -figure loss, churn or ingest)")
		shardCnts  = flag.String("shardcounts", "1,2,4,8", "channel counts of the shard sweep (with -figure shards)")
		sites      = flag.Int("sites", 50000, "site count of the shard sweep's large uniform dataset (with -figure shards)")
		baselines  = flag.Bool("baselines", false, "also build the serial trian-tree and trap-tree baselines (opt-in: they dominate build time at large N)")
		contModel  = flag.String("cont-model", "waypoint", "trajectory model of the continuous fleet: waypoint or commuter (with -figure continuous)")
		contCli    = flag.Int("cont-clients", 4, "moving clients in the continuous fleet (with -figure continuous)")
		contCyc    = flag.Int("cont-cycles", 60, "broadcast cycles per continuous client (with -figure continuous)")
		contChurn  = flag.Int("cont-churn", 32, "site operations applied across the continuous run (with -figure continuous)")
		contK      = flag.Int("cont-k", 4, "standing kNN size of the continuous query (with -figure continuous)")
		contWin    = flag.Float64("cont-window", 0.05, "standing window extent as a fraction of the area side (with -figure continuous)")
		contSites  = flag.Int("cont-sites", 10000, "site count of the continuous sweep's uniform dataset (with -figure continuous)")
		contCap    = flag.Int("cont-capacity", 128, "packet capacity of the continuous sweep in bytes (with -figure continuous)")
		workers    = flag.Int("workers", 0, "simulation workers per cell (0 = one per CPU); results are identical at any count")
		buildWkrs  = flag.Int("buildworkers", 0, "D-tree build workers (0 = one per CPU); the built tree is identical at any count")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	caps, err := parseInts(*capacities)
	if err != nil {
		fatal(err)
	}
	ds, err := parseDatasets(*datasets)
	if err != nil {
		fatal(err)
	}
	cfg := experiment.Config{Capacities: caps, Queries: *queries, Seed: *seed, ByArea: *byArea, Workers: *workers, BuildWorkers: *buildWkrs, NoBaselines: !*baselines}

	if *figure == "shards" {
		counts, err := parseInts(*shardCnts)
		if err != nil {
			fatal(err)
		}
		d := dataset.LargeUniform(*sites)
		ps, err := experiment.RunShards(d, caps[0], counts, cfg)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(map[string]any{"figure": "shards", "dataset": d.Name, "sites": d.N(), "capacity": caps[0], "points": ps})
			return
		}
		if *csvOut {
			fmt.Print(experiment.ShardsCSV(ps))
			return
		}
		fmt.Printf("=== Sharded broadcast fabric, %s, %d B packets ===\n%s\n", d.Name, caps[0], experiment.ShardsTables(ps))
		return
	}

	if *figure == "continuous" {
		d := dataset.LargeUniform(*contSites)
		q := stream.ContinuousQuery{
			WindowW: d.Area.W() * *contWin,
			WindowH: d.Area.H() * *contWin,
			K:       *contK,
		}
		pt, err := experiment.RunContinuous(d, *contCap, *contModel, *contCli, *contCyc, *contChurn, q, *seed)
		if err != nil {
			fatal(err)
		}
		ps := []experiment.ContinuousPoint{pt}
		if *jsonOut {
			emitJSON(map[string]any{"figure": "continuous", "dataset": d.Name, "sites": d.N(), "capacity": *contCap, "points": ps})
			return
		}
		if *csvOut {
			fmt.Print(experiment.ContinuousCSV(ps))
			return
		}
		fmt.Printf("=== Continuous queries on air, %s, %d B packets ===\n%s\n", d.Name, *contCap, experiment.ContinuousTables(ps))
		return
	}

	if *figure == "dist" {
		for _, d := range ds {
			ms, err := experiment.RunDistributed(d, cfg)
			if err != nil {
				fatal(err)
			}
			if *jsonOut {
				emitJSON(map[string]any{"figure": "dist", "dataset": d.Name, "points": ms})
				continue
			}
			if *csvOut {
				fmt.Print(experiment.CSV(ms))
				continue
			}
			fmt.Printf("=== (1,m) vs distributed indexing, %s ===\n", d.Name)
			for _, metric := range []experiment.Metric{
				experiment.MetricNormLatency, experiment.MetricTuneIndex, experiment.MetricEfficiency,
			} {
				fmt.Print(experiment.Table(ms, d.Name, metric))
				fmt.Println()
			}
		}
		return
	}
	if *figure == "loss" {
		for _, d := range ds {
			ps, err := experiment.RunLoss(d, caps[0], experiment.LossRates(), *lossQ, *seed)
			if err != nil {
				fatal(err)
			}
			if *jsonOut {
				emitJSON(map[string]any{"figure": "loss", "dataset": d.Name, "capacity": caps[0], "points": ps})
				continue
			}
			if *csvOut {
				fmt.Print(experiment.LossCSV(ps))
				continue
			}
			fmt.Printf("=== Unreliable channel, %s, %d B packets ===\n%s\n", d.Name, caps[0], experiment.LossTables(ps))
		}
		return
	}
	if *figure == "churn" {
		for _, d := range ds {
			ps, err := experiment.RunChurn(d, caps[0], experiment.ChurnLevels(), *lossQ, *seed)
			if err != nil {
				fatal(err)
			}
			if *jsonOut {
				emitJSON(map[string]any{"figure": "churn", "dataset": d.Name, "capacity": caps[0], "points": ps})
				continue
			}
			if *csvOut {
				fmt.Print(experiment.ChurnCSV(ps))
				continue
			}
			fmt.Printf("=== Live reconfiguration, %s, %d B packets ===\n%s\n", d.Name, caps[0], experiment.ChurnTables(ps))
		}
		return
	}
	if *figure == "ingest" {
		for _, d := range ds {
			ps, err := experiment.RunIngest(d, caps[0], experiment.IngestLevels(), *lossQ, *seed)
			if err != nil {
				fatal(err)
			}
			if *jsonOut {
				emitJSON(map[string]any{"figure": "ingest", "dataset": d.Name, "capacity": caps[0], "points": ps})
				continue
			}
			if *csvOut {
				fmt.Print(experiment.IngestCSV(ps))
				continue
			}
			fmt.Printf("=== Asynchronous ingest, %s, %d B packets ===\n%s\n", d.Name, caps[0], experiment.IngestTables(ps))
		}
		return
	}
	if *figure == "skew" {
		for _, d := range ds {
			ms, err := experiment.RunSkewed(d, cfg, *theta)
			if err != nil {
				fatal(err)
			}
			if *jsonOut {
				emitJSON(map[string]any{"figure": "skew", "dataset": d.Name, "theta": *theta, "points": ms})
				continue
			}
			if *csvOut {
				fmt.Print(experiment.CSV(ms))
				continue
			}
			fmt.Printf("=== Skewed access, %s ===\n%s\n", d.Name, experiment.RenderSkew(ms, d.Name, *theta))
		}
		return
	}
	if *figure == "cache" {
		sizes := []int{0, 1, 2, 4, 8, 16}
		for _, d := range ds {
			for _, capacity := range caps {
				rs, err := experiment.RunCached(d, capacity, sizes, cfg)
				if err != nil {
					fatal(err)
				}
				fmt.Println(experiment.CacheTable(rs))
			}
		}
		return
	}
	if *figure == "ablation" {
		for _, d := range ds {
			ms, err := experiment.RunAblation(d, cfg)
			if err != nil {
				fatal(err)
			}
			if *jsonOut {
				emitJSON(map[string]any{"figure": "ablation", "dataset": d.Name, "points": ms})
				continue
			}
			if *csvOut {
				fmt.Print(experiment.CSV(ms))
				continue
			}
			fmt.Printf("=== D-tree ablations, %s ===\n", d.Name)
			for _, metric := range []experiment.Metric{
				experiment.MetricTuneIndex, experiment.MetricNormLatency, experiment.MetricNormIndexSize,
			} {
				fmt.Print(experiment.Table(ms, d.Name, metric))
				fmt.Println()
			}
		}
		return
	}

	ms, err := experiment.RunAll(ds, cfg)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		emitJSON(map[string]any{"figure": *figure, "points": ms})
		return
	}
	if *csvOut {
		fmt.Print(experiment.CSV(ms))
		return
	}
	figures := map[string]experiment.Metric{
		"10": experiment.MetricNormLatency,
		"11": experiment.MetricNormIndexSize,
		"12": experiment.MetricTuneIndex,
		"13": experiment.MetricEfficiency,
	}
	order := []string{"10", "11", "12", "13"}
	if *figure != "all" {
		if _, ok := figures[*figure]; !ok {
			fatal(fmt.Errorf("unknown figure %q", *figure))
		}
		order = []string{*figure}
	}
	for i, f := range order {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== Figure %s ===\n", f)
		fmt.Print(experiment.Figure(ms, figures[f]))
	}
}

// emitJSON writes one figure's result document to stdout.
func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad capacity %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no capacities given")
	}
	return out, nil
}

func parseDatasets(s string) ([]dataset.Dataset, error) {
	var out []dataset.Dataset
	for _, part := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(part)) {
		case "uniform":
			out = append(out, dataset.Uniform(1000, 1000))
		case "hospital":
			out = append(out, dataset.Hospital())
		case "park":
			out = append(out, dataset.Park())
		case "":
		default:
			return nil, fmt.Errorf("unknown dataset %q (want uniform, hospital, park)", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no datasets given")
	}
	return out, nil
}

func fatal(err error) {
	pprof.StopCPUProfile() // os.Exit skips defers; don't truncate the profile
	fmt.Fprintln(os.Stderr, "airbench:", err)
	os.Exit(1)
}
