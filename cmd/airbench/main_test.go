package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("64, 128,2048")
	if err != nil || len(got) != 3 || got[0] != 64 || got[2] != 2048 {
		t.Fatalf("parseInts: %v %v", got, err)
	}
	if _, err := parseInts(""); err == nil {
		t.Error("empty list should fail")
	}
	if _, err := parseInts("64,abc"); err == nil {
		t.Error("garbage should fail")
	}
}

func TestParseDatasets(t *testing.T) {
	ds, err := parseDatasets("uniform, hospital ,park")
	if err != nil || len(ds) != 3 {
		t.Fatalf("parseDatasets: %d %v", len(ds), err)
	}
	if ds[1].N() != 185 || ds[2].N() != 1102 {
		t.Errorf("dataset sizes: %d %d", ds[1].N(), ds[2].N())
	}
	if _, err := parseDatasets("mars"); err == nil {
		t.Error("unknown dataset should fail")
	}
	if _, err := parseDatasets(""); err == nil {
		t.Error("empty should fail")
	}
}
