package airindex

// Cross-structure integration tests: every index structure, the paged
// D-tree, and the byte-level client decoder must agree on the answer for
// arbitrary subdivisions and queries (up to valid-scope boundary ties).

import (
	"math/rand"
	"sync"
	"testing"

	"airindex/internal/core"
	"airindex/internal/dataset"
	"airindex/internal/experiment"
	"airindex/internal/geom"
	"airindex/internal/wire"
)

func TestCrossStructureConsistency(t *testing.T) {
	seeds := []int64{1, 2, 3}
	sizes := []int{3, 7, 20, 90}
	if testing.Short() {
		seeds = seeds[:1]
		sizes = []int{3, 20}
	}
	for _, seed := range seeds {
		for _, n := range sizes {
			rng := rand.New(rand.NewSource(seed*1000 + int64(n)))
			area := geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}
			sites := make([]geom.Point, n)
			for i := range sites {
				sites[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
			}
			b, err := experiment.Build(dataset.Dataset{Name: "fuzz", Area: area, Sites: sites}, seed)
			if err != nil {
				t.Fatalf("seed %d n %d: %v", seed, n, err)
			}
			sub := b.Sub
			for _, capacity := range []int{64, 512} {
				idxs, err := b.Indexes(capacity)
				if err != nil {
					t.Fatalf("seed %d n %d cap %d: %v", seed, n, capacity, err)
				}
				paged, err := b.DTree.Page(wire.DTreeParams(capacity))
				if err != nil {
					t.Fatal(err)
				}
				packets, err := paged.EncodePackets()
				if err != nil {
					t.Fatal(err)
				}
				for q := 0; q < 400; q++ {
					p := geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
					want := sub.Locate(p)
					check := func(name string, got int) {
						t.Helper()
						if got != want && (got < 0 || !sub.Regions[got].Poly.Contains(p)) {
							t.Fatalf("seed %d n %d cap %d %s: query %v got %d want %d",
								seed, n, capacity, name, p, got, want)
						}
					}
					for _, idx := range idxs {
						got, _ := idx.Locate(p)
						check(idx.Name(), got)
					}
					cgot, _, err := core.ClientLocate(packets, capacity, p)
					if err != nil {
						t.Fatal(err)
					}
					// The codec narrows to float32; allow boundary slack.
					if cgot != want && !sub.Regions[cgot].Poly.Contains(p) {
						if !nearBoundary(sub.Regions[cgot].Poly, p, 0.05) {
							t.Fatalf("seed %d n %d cap %d codec: query %v got %d want %d",
								seed, n, capacity, p, cgot, want)
						}
					}
				}
			}
		}
	}
}

func nearBoundary(pg geom.Polygon, p geom.Point, tol float64) bool {
	for _, e := range pg.Edges() {
		ab := e.B.Sub(e.A)
		tt := p.Sub(e.A).Dot(ab) / ab.Dot(ab)
		if tt < 0 {
			tt = 0
		} else if tt > 1 {
			tt = 1
		}
		if p.Dist(geom.Lerp(e.A, e.B, tt)) <= tol {
			return true
		}
	}
	return false
}

// TestConcurrentQueries exercises read-only query paths from many
// goroutines over one shared System (run with -race in CI).
func TestConcurrentQueries(t *testing.T) {
	sys, err := New(testSites(120, 9), Config{PacketCapacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				p := Pt(rng.Float64()*10000, rng.Float64()*10000)
				if _, err := sys.Locate(p); err != nil {
					errCh <- err
					return
				}
				if _, err := sys.Access(p, rng.Float64()*float64(st.CyclePackets)); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestFacadeSweepAgainstHarness ties the public facade to the measurement
// harness: the facade's Stats must agree with the harness's index sizes.
func TestFacadeSweepAgainstHarness(t *testing.T) {
	ds := dataset.Uniform(100, 77)
	b, err := experiment.Build(ds, 77)
	if err != nil {
		t.Fatal(err)
	}
	for _, capacity := range []int{128, 1024} {
		idxs, err := b.Indexes(capacity)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := New(ds.Sites, Config{PacketCapacity: capacity})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := sys.Stats().IndexPackets, idxs[0].IndexPackets(); got != want {
			t.Errorf("capacity %d: facade index %d packets, harness %d", capacity, got, want)
		}
	}
}
