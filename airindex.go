// Package airindex is an energy-efficient air-indexing library for querying
// location-dependent data in mobile broadcast environments, reproducing
// Xu, Zheng, Lee & Lee, "Energy Efficient Index for Querying
// Location-Dependent Data in Mobile Broadcast Environments" (ICDE 2003).
//
// A broadcast server owns a set of point sites (data instances such as
// "nearest hospital" answers); each site's valid scope is its Voronoi cell
// over a rectangular service area. The library builds an air index over the
// scopes — the paper's D-tree by default, or one of its evaluated baselines
// (Kirkpatrick's trian-tree, the trapezoidal-map trap-tree, the R*-tree) —
// pages it into fixed-size packets, interleaves index and data with the
// (1, m) organization, and simulates the client access protocol to measure
// access latency and tuning time.
//
// Quick start:
//
//	sys, err := airindex.New(sites, airindex.Config{PacketCapacity: 512})
//	item, _ := sys.Locate(airindex.Pt(3120, 4475))    // which data instance answers
//	cost, _ := sys.Access(airindex.Pt(3120, 4475), t) // full protocol simulation
package airindex

import (
	"fmt"
	"math/rand"

	"airindex/internal/broadcast"
	"airindex/internal/core"
	"airindex/internal/geom"
	"airindex/internal/region"
	"airindex/internal/rstar"
	"airindex/internal/traptree"
	"airindex/internal/triantree"
	"airindex/internal/voronoi"
	"airindex/internal/wire"
)

// Point is a location in the two-dimensional service area.
type Point = geom.Point

// Rect is an axis-aligned rectangle (the service area).
type Rect = geom.Rect

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// DefaultArea is the service area used when Config.Area is zero: a
// 10000 x 10000 square.
var DefaultArea = Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}

// IndexKind selects the air-index structure.
type IndexKind int

const (
	// DTree is the paper's contribution (the default).
	DTree IndexKind = iota
	// TrianTree is Kirkpatrick's planar point-location hierarchy.
	TrianTree
	// TrapTree is the randomized-incremental trapezoidal map.
	TrapTree
	// RStarTree is the R*-tree with the added exact-shape layer.
	RStarTree
)

func (k IndexKind) String() string {
	switch k {
	case DTree:
		return "D-tree"
	case TrianTree:
		return "trian-tree"
	case TrapTree:
		return "trap-tree"
	case RStarTree:
		return "R*-tree"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// Config tunes a System. The zero value gives the paper's defaults: a
// D-tree over Voronoi valid scopes, 512-byte packets, 1 KB data instances,
// and the latency-optimal (1, m) replication factor.
type Config struct {
	// Area is the service area (DefaultArea when zero).
	Area Rect
	// Index selects the structure (DTree when zero).
	Index IndexKind
	// PacketCapacity is the packet size in bytes (512 when zero).
	PacketCapacity int
	// DataInstanceSize is the size of one data instance (1024 when zero).
	DataInstanceSize int
	// M fixes the (1, m) replication factor; 0 picks the optimum.
	M int
	// Seed drives the randomized trap-tree insertion order (and nothing
	// else); 0 means 1.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Area.IsEmpty() || c.Area.Area() == 0 {
		c.Area = DefaultArea
	}
	if c.PacketCapacity == 0 {
		c.PacketCapacity = 512
	}
	if c.DataInstanceSize == 0 {
		c.DataInstanceSize = 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// AccessCost is the simulated cost of one query under the client access
// protocol: latency in packet slots from query issue to data receipt, and
// tuning (active listening) split per protocol step.
type AccessCost = broadcast.AccessCost

// System is a broadcast service: valid scopes, a paged air index, and the
// (1, m) broadcast schedule.
type System struct {
	cfg   Config
	sub   *region.Subdivision
	sched *broadcast.Schedule

	locate func(geom.Point) (int, []int)
	idxPk  int
	idxB   int
	dtree  *core.Tree // set when Index == DTree (enables Trajectory)
}

// New derives Voronoi valid scopes for the sites and builds the configured
// air index over them.
func New(sites []Point, cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	sub, err := voronoi.Subdivision(cfg.Area, sites)
	if err != nil {
		return nil, err
	}
	return NewFromSubdivision(sub, cfg)
}

// NewFromScopes builds a System over explicitly supplied valid scopes
// (polygons, given as vertex rings, that must exactly tile the area).
func NewFromScopes(scopes [][]Point, cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	polys := make([]geom.Polygon, len(scopes))
	for i, s := range scopes {
		polys[i] = geom.Polygon(s)
	}
	sub, err := region.New(cfg.Area, polys, region.WithTJunctionRepair())
	if err != nil {
		return nil, err
	}
	if err := sub.Validate(); err != nil {
		return nil, err
	}
	return NewFromSubdivision(sub, cfg)
}

// NewFromSubdivision builds a System over a prepared subdivision.
func NewFromSubdivision(sub *region.Subdivision, cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	s := &System{cfg: cfg, sub: sub}
	switch cfg.Index {
	case DTree:
		t, err := core.Build(sub)
		if err != nil {
			return nil, err
		}
		params := wire.DTreeParams(cfg.PacketCapacity)
		params.DataInstanceSize = cfg.DataInstanceSize
		pg, err := t.Page(params)
		if err != nil {
			return nil, err
		}
		s.locate, s.idxPk, s.idxB = pg.Locate, pg.IndexPackets(), pg.Layout.SizeBytes()
		s.dtree = t
	case TrianTree:
		t, err := triantree.Build(sub)
		if err != nil {
			return nil, err
		}
		params := wire.DecompositionParams(cfg.PacketCapacity)
		params.DataInstanceSize = cfg.DataInstanceSize
		pg, err := t.Page(params)
		if err != nil {
			return nil, err
		}
		s.locate, s.idxPk, s.idxB = pg.Locate, pg.IndexPackets(), pg.Layout.SizeBytes()
	case TrapTree:
		m, err := traptree.Build(sub, rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			return nil, err
		}
		params := wire.DecompositionParams(cfg.PacketCapacity)
		params.DataInstanceSize = cfg.DataInstanceSize
		pg, err := m.Page(params)
		if err != nil {
			return nil, err
		}
		s.locate, s.idxPk, s.idxB = pg.Locate, pg.IndexPackets(), pg.Layout.SizeBytes()
	case RStarTree:
		params := wire.RStarParams(cfg.PacketCapacity)
		params.DataInstanceSize = cfg.DataInstanceSize
		a, err := rstar.BuildAir(sub, params)
		if err != nil {
			return nil, err
		}
		s.locate, s.idxPk, s.idxB = a.Locate, a.IndexPackets(), a.SizeBytes()
	default:
		return nil, fmt.Errorf("airindex: unknown index kind %v", cfg.Index)
	}

	params := wire.DTreeParams(cfg.PacketCapacity)
	params.DataInstanceSize = cfg.DataInstanceSize
	bucketPackets := params.DataBucketPackets()
	m := cfg.M
	if m <= 0 {
		m = broadcast.OptimalM(s.idxPk, sub.N()*bucketPackets)
	}
	sched, err := broadcast.NewSchedule(s.idxPk, sub.N(), bucketPackets, m)
	if err != nil {
		return nil, err
	}
	s.sched = sched
	return s, nil
}

// N returns the number of data instances.
func (s *System) N() int { return s.sub.N() }

// Locate answers a point query: the id of the data instance whose valid
// scope contains p. Queries must lie within the service area.
func (s *System) Locate(p Point) (int, error) {
	if !s.sub.Area.Contains(p) {
		return 0, fmt.Errorf("airindex: query %v outside the service area %+v", p, s.sub.Area)
	}
	id, _ := s.locate(p)
	if id < 0 {
		return 0, fmt.Errorf("airindex: no valid scope contains %v", p)
	}
	return id, nil
}

// Access simulates the full client access protocol for a query issued at
// absolute time t (in packet slots).
func (s *System) Access(p Point, t float64) (AccessCost, error) {
	if !s.sub.Area.Contains(p) {
		return AccessCost{}, fmt.Errorf("airindex: query %v outside the service area %+v", p, s.sub.Area)
	}
	id, trace := s.locate(p)
	if id < 0 {
		return AccessCost{}, fmt.Errorf("airindex: no valid scope contains %v", p)
	}
	return s.sched.Access(t, broadcast.SearchTrace{Bucket: id, IndexOffsets: trace})
}

// ValidScope returns the vertex ring of data instance id's valid scope.
func (s *System) ValidScope(id int) ([]Point, error) {
	if id < 0 || id >= s.sub.N() {
		return nil, fmt.Errorf("airindex: instance %d out of range [0,%d)", id, s.sub.N())
	}
	poly := s.sub.Regions[id].Poly
	out := make([]Point, len(poly))
	copy(out, poly)
	return out, nil
}

// Leg is one stretch of a trajectory during which a single data instance
// is the valid answer.
type Leg struct {
	Instance int
	T        float64 // entry parameter along the trajectory, in [0, 1)
	At       Point   // entry location
}

// Trajectory returns the sequence of data instances valid along the
// straight path from a to b, with the exact points where the answer
// changes — the continuous-query primitive for moving clients. It requires
// the default D-tree index.
func (s *System) Trajectory(a, b Point) ([]Leg, error) {
	if s.dtree == nil {
		return nil, fmt.Errorf("airindex: trajectory queries require the D-tree index (got %v)", s.cfg.Index)
	}
	crossings, err := s.dtree.CrossedRegions(a, b)
	if err != nil {
		return nil, err
	}
	out := make([]Leg, len(crossings))
	for i, c := range crossings {
		out[i] = Leg{Instance: c.Region, T: c.T, At: c.At}
	}
	return out, nil
}

// Stats summarizes the broadcast organization.
type Stats struct {
	Index            IndexKind
	N                int // data instances
	PacketCapacity   int
	IndexPackets     int // one index copy, in packets
	IndexBytes       int // occupied index bytes
	DataPackets      int // data per cycle, in packets
	M                int // (1, m) replication factor
	CyclePackets     int
	OptimalLatency   float64 // packets: half a data-only broadcast
	IndexSizeRatio   float64 // on-air index bytes / on-air data bytes
	BucketPackets    int
	DataInstanceSize int
}

// Stats reports the broadcast organization of the system.
func (s *System) Stats() Stats {
	d := s.sched.DataPackets()
	return Stats{
		Index:            s.cfg.Index,
		N:                s.sub.N(),
		PacketCapacity:   s.cfg.PacketCapacity,
		IndexPackets:     s.idxPk,
		IndexBytes:       s.idxB,
		DataPackets:      d,
		M:                s.sched.M,
		CyclePackets:     s.sched.CycleLen(),
		OptimalLatency:   float64(d) / 2,
		IndexSizeRatio:   float64(s.idxPk) / float64(d),
		BucketPackets:    s.sched.BucketPackets,
		DataInstanceSize: s.cfg.DataInstanceSize,
	}
}
