module airindex

go 1.22
